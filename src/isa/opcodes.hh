/**
 * @file
 * Opcode set, operation classes, instruction formats, and the static
 * per-opcode metadata table for the Alpha-like ISA.
 */

#ifndef DISE_ISA_OPCODES_HH
#define DISE_ISA_OPCODES_HH

#include <cstdint>

namespace dise {

/**
 * Operation classes. DISE pattern specifications match on these
 * (e.g. the paper's T.OPCLASS==store).
 */
enum class OpClass : uint8_t {
    IntAlu,  ///< single-cycle integer ops, lda/ldah
    IntMul,  ///< integer multiply
    Load,    ///< memory loads
    Store,   ///< memory stores
    CtrlBr,  ///< conditional PC-relative branches
    CtrlJmp, ///< unconditional branches, jumps, calls, returns
    Sys,     ///< traps, syscalls, halt, nop, codeword
    DiseCtl, ///< DISE-internal control (d_b*, d_call, d_ccall, d_ret, ...)
};

constexpr unsigned NumOpClasses = static_cast<unsigned>(OpClass::DiseCtl) + 1;

/** Encoding/operand formats. */
enum class Format : uint8_t {
    Operate,    ///< rc = ra OP rb
    OperateImm, ///< rc = ra OP zext(imm8)
    Memory,     ///< ra op mem[rb + sext(disp14)]; lda/ldah compute only
    Branch,     ///< cond(ra) -> PC+4+sext(disp19)*4; BSR links ra
    Jump,       ///< ra = PC+4 (JSR); PC = rb
    System,     ///< imm24 code
    Ctrap,      ///< trap if ra != 0, code imm19
    DiseBranch, ///< d_beq/d_bne: cond(ra) -> DISEPC += imm
    DiseCall,   ///< d_call/d_ccall: cond ra (ccall), target in rb
    DiseMove,   ///< d_mfr ra<-rb(dise) / d_mtr rb(dise)<-ra
    Nullary,    ///< d_ret, halt, nop
};

/** The instruction set. */
enum class Opcode : uint8_t {
    // Loads / address generation.
    LDQ, LDL, LDW, LDB, LDA, LDAH,
    // Stores.
    STQ, STL, STW, STB,
    // Register-register ALU.
    ADDQ, SUBQ, MULQ, AND, BIS, XOR, BIC, SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,
    // Register-immediate ALU (8-bit zero-extended literal).
    ADDQ_I, SUBQ_I, MULQ_I, AND_I, BIS_I, XOR_I, BIC_I, SLL_I, SRL_I, SRA_I,
    CMPEQ_I, CMPLT_I, CMPLE_I, CMPULT_I, CMPULE_I,
    // Control.
    BEQ, BNE, BLT, BLE, BGT, BGE, BR, BSR,
    JMP, JSR, RET,
    // System.
    SYSCALL, TRAP, CTRAP, HALT, NOP, CODEWORD,
    // DISE.
    D_BEQ, D_BNE, D_CALL, D_CCALL, D_RET, D_MFR, D_MTR,

    NumOpcodes,
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;   ///< mnemonic
    OpClass cls;        ///< operation class (DISE pattern granularity)
    Format fmt;         ///< operand/encoding format
    uint8_t memBytes;   ///< access size for loads/stores, else 0
    bool diseOnly;      ///< legal only inside DISE replacement sequences
    bool encodable;     ///< has a 32-bit memory encoding
};

/** Metadata for @p op. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for @p op. */
const char *opName(Opcode op);

/** Convenience category tests. */
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isCondBranch(Opcode op);
bool isControl(Opcode op);

} // namespace dise

#endif // DISE_ISA_OPCODES_HH
