#include "isa/inst.hh"

#include "common/logging.hh"

namespace dise {

std::string
regName(RegId r)
{
    switch (r.kind) {
      case RegKind::None:
        return "-";
      case RegKind::Dise:
        return "dr" + std::to_string(r.idx);
      case RegKind::Int:
        break;
    }
    switch (r.idx) {
      case 15: return "fp";
      case 26: return "ra";
      case 28: return "at";
      case 29: return "gp";
      case 30: return "sp";
      case 31: return "zero";
      default: return "r" + std::to_string(r.idx);
    }
}

Inst
makeOp(Opcode op, RegId ra, RegId rb, RegId rc)
{
    DISE_ASSERT(opInfo(op).fmt == Format::Operate, opName(op));
    return Inst{op, ra, rb, rc, 0};
}

Inst
makeOpImm(Opcode op, RegId ra, uint8_t imm, RegId rc)
{
    DISE_ASSERT(opInfo(op).fmt == Format::OperateImm, opName(op));
    return Inst{op, ra, {}, rc, imm};
}

Inst
makeMem(Opcode op, RegId ra, int64_t disp, RegId rb)
{
    DISE_ASSERT(opInfo(op).fmt == Format::Memory, opName(op));
    return Inst{op, ra, rb, {}, disp};
}

Inst
makeBranch(Opcode op, RegId ra, int64_t dispWords)
{
    DISE_ASSERT(opInfo(op).fmt == Format::Branch, opName(op));
    return Inst{op, ra, {}, {}, dispWords};
}

Inst
makeJump(Opcode op, RegId link, RegId target)
{
    DISE_ASSERT(opInfo(op).fmt == Format::Jump, opName(op));
    return Inst{op, link, target, {}, 0};
}

Inst
makeSystem(Opcode op, int64_t code)
{
    DISE_ASSERT(opInfo(op).fmt == Format::System, opName(op));
    return Inst{op, {}, {}, {}, code};
}

Inst
makeCtrap(RegId cond, int64_t code)
{
    return Inst{Opcode::CTRAP, cond, {}, {}, code};
}

Inst
makeDiseBranch(Opcode op, RegId cond, int64_t skip)
{
    DISE_ASSERT(op == Opcode::D_BEQ || op == Opcode::D_BNE, opName(op));
    return Inst{op, cond, {}, {}, skip};
}

Inst
makeDiseCall(RegId cond, RegId targetHolder)
{
    DISE_ASSERT(targetHolder.kind == RegKind::Dise,
                "d_call target must live in a DISE register");
    Opcode op = cond.valid() ? Opcode::D_CCALL : Opcode::D_CALL;
    return Inst{op, cond, targetHolder, {}, 0};
}

Inst
makeDiseMove(Opcode op, RegId archReg, RegId diseReg)
{
    DISE_ASSERT(op == Opcode::D_MFR || op == Opcode::D_MTR, opName(op));
    DISE_ASSERT(archReg.kind == RegKind::Int &&
                diseReg.kind == RegKind::Dise,
                "d_mfr/d_mtr operand kinds");
    return Inst{op, archReg, diseReg, {}, 0};
}

Inst
makeNullary(Opcode op)
{
    DISE_ASSERT(opInfo(op).fmt == Format::Nullary, opName(op));
    return Inst{op, {}, {}, {}, 0};
}

SrcRegs
srcRegs(const Inst &inst)
{
    SrcRegs s;
    switch (inst.info().fmt) {
      case Format::Operate:
        s.r[0] = inst.ra;
        s.r[1] = inst.rb;
        break;
      case Format::OperateImm:
        s.r[0] = inst.ra;
        break;
      case Format::Memory:
        if (inst.isStore()) {
            s.r[0] = inst.ra;
            s.r[1] = inst.rb;
        } else {
            s.r[0] = inst.rb;
        }
        break;
      case Format::Branch:
        if (inst.isCondBranch())
            s.r[0] = inst.ra;
        break;
      case Format::Jump:
        s.r[0] = inst.rb;
        break;
      case Format::Ctrap:
      case Format::DiseBranch:
        s.r[0] = inst.ra;
        break;
      case Format::DiseCall:
        s.r[0] = inst.rb; // target holder
        if (inst.op == Opcode::D_CCALL)
            s.r[1] = inst.ra;
        break;
      case Format::DiseMove:
        s.r[0] = inst.op == Opcode::D_MTR ? inst.ra : inst.rb;
        break;
      case Format::System:
      case Format::Nullary:
        break;
    }
    return s;
}

RegId
dstReg(const Inst &inst)
{
    switch (inst.info().fmt) {
      case Format::Operate:
      case Format::OperateImm:
        return inst.rc;
      case Format::Memory:
        return inst.isStore() ? RegId{} : inst.ra;
      case Format::Branch:
        return inst.op == Opcode::BSR ? inst.ra : RegId{};
      case Format::Jump:
        return inst.op == Opcode::JSR ? inst.ra : RegId{};
      case Format::DiseMove:
        return inst.op == Opcode::D_MFR ? inst.ra : inst.rb;
      default:
        return RegId{};
    }
}

} // namespace dise
