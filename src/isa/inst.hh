/**
 * @file
 * The decoded instruction record plus convenience constructors.
 *
 * Inst is the common currency of the whole system: the decoder produces
 * them from 32-bit words, the DISE engine instantiates them from
 * replacement templates, the functional core executes them, and the
 * timing pipeline schedules them.
 */

#ifndef DISE_ISA_INST_HH
#define DISE_ISA_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace dise {

using Addr = uint64_t;

/** One decoded instruction. Field meaning depends on opInfo(op).fmt:
 *
 *  - Operate:     rc = ra OP rb
 *  - OperateImm:  rc = ra OP zext(imm & 0xff)
 *  - Memory:      loads: ra <- mem[rb+imm]; stores: mem[rb+imm] <- ra;
 *                 lda: ra = rb+imm; ldah: ra = rb+(imm<<16)
 *  - Branch:      cond(ra); target = pc+4+imm*4; BSR links ra
 *  - Jump:        PC = rb; JSR links ra
 *  - System:      imm = code
 *  - Ctrap:       trap if ra != 0
 *  - DiseBranch:  cond(ra); DISEPC += imm (relative skip count)
 *  - DiseCall:    target address held in DISE reg rb; ccall cond = ra
 *  - DiseMove:    d_mfr: ra <- rb(dise); d_mtr: rb(dise) <- ra
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    RegId ra{};
    RegId rb{};
    RegId rc{};
    int64_t imm = 0;

    bool operator==(const Inst &) const = default;

    const OpInfo &info() const { return opInfo(op); }
    OpClass cls() const { return info().cls; }
    bool isLoad() const { return cls() == OpClass::Load; }
    bool isStore() const { return cls() == OpClass::Store; }
    bool isCondBranch() const { return cls() == OpClass::CtrlBr; }
    bool isDise() const { return cls() == OpClass::DiseCtl; }
    /** Memory access size in bytes (loads/stores only). */
    unsigned memBytes() const { return info().memBytes; }
};

/** @name Inst constructors used by the assembler, templates, and tests.
 *  Operand order mirrors the paper's assembly: destination right-most
 *  for ALU ops ("addq sp, 8, dr0" => dr0 = sp + 8).
 */
///@{
Inst makeOp(Opcode op, RegId ra, RegId rb, RegId rc);
Inst makeOpImm(Opcode op, RegId ra, uint8_t imm, RegId rc);
Inst makeMem(Opcode op, RegId ra, int64_t disp, RegId rb);
Inst makeBranch(Opcode op, RegId ra, int64_t dispWords);
Inst makeJump(Opcode op, RegId link, RegId target);
Inst makeSystem(Opcode op, int64_t code);
Inst makeCtrap(RegId cond, int64_t code);
Inst makeDiseBranch(Opcode op, RegId cond, int64_t skip);
Inst makeDiseCall(RegId cond, RegId targetHolder);
Inst makeDiseMove(Opcode op, RegId archReg, RegId diseReg);
Inst makeNullary(Opcode op);
///@}

/** Registers read by @p inst (up to 2); invalid entries unused. */
struct SrcRegs
{
    RegId r[2]{};
};
SrcRegs srcRegs(const Inst &inst);

/** Register written by @p inst, or invalid RegId. */
RegId dstReg(const Inst &inst);

} // namespace dise

#endif // DISE_ISA_INST_HH
