#include "isa/encoding.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

namespace {

uint32_t
regField(RegId r, RegKind expect)
{
    if (!r.valid())
        return 31; // encode missing register operands as the zero register
    DISE_ASSERT(r.kind == expect, "register kind not encodable here: ",
                regName(r));
    return r.idx;
}

} // namespace

bool
encodable(const Inst &inst)
{
    const OpInfo &info = inst.info();
    if (!info.encodable)
        return false;
    switch (info.fmt) {
      case Format::Memory:
        if (!fitsSigned(inst.imm, MemDispBits))
            return false;
        break;
      case Format::Branch:
        if (!fitsSigned(inst.imm, BranchDispBits))
            return false;
        break;
      case Format::OperateImm:
        if (!fitsUnsigned(static_cast<uint64_t>(inst.imm), 8))
            return false;
        break;
      case Format::System:
        if (!fitsUnsigned(static_cast<uint64_t>(inst.imm), SystemImmBits))
            return false;
        break;
      case Format::Ctrap:
        if (!fitsUnsigned(static_cast<uint64_t>(inst.imm), 19))
            return false;
        break;
      default:
        break;
    }
    // Any DISE-register operand outside DiseMove kills encodability.
    if (info.fmt != Format::DiseMove) {
        for (RegId r : {inst.ra, inst.rb, inst.rc})
            if (r.valid() && r.kind == RegKind::Dise)
                return false;
    }
    return true;
}

uint32_t
encode(const Inst &inst)
{
    DISE_ASSERT(encodable(inst), "instruction not encodable: ",
                opName(inst.op));
    const OpInfo &info = inst.info();
    uint32_t w = static_cast<uint32_t>(inst.op) << 24;
    switch (info.fmt) {
      case Format::Operate:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= regField(inst.rb, RegKind::Int) << 14;
        w |= regField(inst.rc, RegKind::Int) << 9;
        break;
      case Format::OperateImm:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= (static_cast<uint32_t>(inst.imm) & 0xff) << 11;
        w |= regField(inst.rc, RegKind::Int) << 6;
        break;
      case Format::Memory:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= regField(inst.rb, RegKind::Int) << 14;
        w |= static_cast<uint32_t>(inst.imm) & ((1u << MemDispBits) - 1);
        break;
      case Format::Branch:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= static_cast<uint32_t>(inst.imm) & ((1u << BranchDispBits) - 1);
        break;
      case Format::Jump:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= regField(inst.rb, RegKind::Int) << 14;
        break;
      case Format::System:
        w |= static_cast<uint32_t>(inst.imm) & 0xffffff;
        break;
      case Format::Ctrap:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= static_cast<uint32_t>(inst.imm) & 0x7ffff;
        break;
      case Format::DiseMove:
        w |= regField(inst.ra, RegKind::Int) << 19;
        w |= (inst.rb.idx & 0x7u) << 16;
        break;
      case Format::Nullary:
        break;
      default:
        panic("unencodable format for ", opName(inst.op));
    }
    return w;
}

std::optional<Inst>
decode(uint32_t word)
{
    unsigned opByte = word >> 24;
    if (opByte >= NumOpcodes)
        return std::nullopt;
    Opcode op = static_cast<Opcode>(opByte);
    const OpInfo &info = opInfo(op);
    if (!info.encodable)
        return std::nullopt;

    Inst inst;
    inst.op = op;
    switch (info.fmt) {
      case Format::Operate:
        inst.ra = ir(bits(word, 19, 5));
        inst.rb = ir(bits(word, 14, 5));
        inst.rc = ir(bits(word, 9, 5));
        break;
      case Format::OperateImm:
        inst.ra = ir(bits(word, 19, 5));
        inst.imm = static_cast<int64_t>(bits(word, 11, 8));
        inst.rc = ir(bits(word, 6, 5));
        break;
      case Format::Memory:
        inst.ra = ir(bits(word, 19, 5));
        inst.rb = ir(bits(word, 14, 5));
        inst.imm = sext(bits(word, 0, MemDispBits), MemDispBits);
        break;
      case Format::Branch:
        inst.ra = ir(bits(word, 19, 5));
        inst.imm = sext(bits(word, 0, BranchDispBits), BranchDispBits);
        break;
      case Format::Jump:
        inst.ra = ir(bits(word, 19, 5));
        inst.rb = ir(bits(word, 14, 5));
        break;
      case Format::System:
        inst.imm = static_cast<int64_t>(bits(word, 0, SystemImmBits));
        break;
      case Format::Ctrap:
        inst.ra = ir(bits(word, 19, 5));
        inst.imm = static_cast<int64_t>(bits(word, 0, 19));
        break;
      case Format::DiseMove:
        inst.ra = ir(bits(word, 19, 5));
        inst.rb = dr(bits(word, 16, 3));
        break;
      case Format::Nullary:
        break;
      default:
        return std::nullopt;
    }
    return inst;
}

} // namespace dise
