/**
 * @file
 * The per-backend collection of enabled debug tools.
 *
 * A ToolSet lives by value inside every DebugBackend and is bound into
 * the backend's StreamEnv as the µop observer. While no tool is enabled
 * the stream pays one inline branch per µop; enabling any tool arms the
 * observer. On the DISE backend each enabled tool additionally installs
 * its ProductionSet so the pipeline executes (and the timing model
 * charges for) the in-pipeline payload; the other four backends run the
 * same host-side detection without productions, which is what makes
 * findings backend-invariant.
 *
 * Tool state (including the findings list) snapshots and restores with
 * the backend host state, so time-travel rollback, interval replay and
 * hibernate/resurrect all see a consistent tool timeline.
 */

#ifndef DISE_TOOLS_TOOLSET_HH
#define DISE_TOOLS_TOOLSET_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/microop.hh"
#include "tools/tool.hh"

namespace dise {

class DebugTarget;

namespace tools {

/** Per-tool stats row surfaced through ServerStats. */
struct ToolStatsRow
{
    std::string name;
    uint64_t uopsSeen = 0;
    uint64_t checks = 0;
    uint64_t suppressed = 0;
    uint64_t findings = 0;
};

class ToolSet : public UopObserver
{
  public:
    using Config = std::vector<std::pair<std::string, std::string>>;
    using Blobs = std::vector<std::pair<std::string, std::vector<uint8_t>>>;

    ToolSet();
    ~ToolSet() override;

    ToolSet(const ToolSet &) = delete;
    ToolSet &operator=(const ToolSet &) = delete;

    /** Bind the target whose µops this set observes (from streamEnv). */
    void bind(DebugTarget *t) { target_ = t; }

    /**
     * Enable @p name with @p cfg. When @p useProductions, the tool's
     * DISE production set installs into @p t's engine (DISE backend);
     * @p slotsOut receives the occupied pattern-table slots for the
     * replay journal. Fails on unknown tools, duplicate enables, and
     * bad configuration — with nothing installed.
     */
    bool enable(DebugTarget &t, const std::string &name,
                const Config &cfg, bool useProductions, std::string *err,
                std::vector<int> *slotsOut = nullptr,
                const std::vector<int> *atSlots = nullptr);

    /**
     * Validate an enable without mutating anything: unknown tool,
     * duplicate enable, bad config, pattern-table capacity.
     */
    bool canEnable(const DebugTarget &t, const std::string &name,
                   const Config &cfg, bool useProductions,
                   std::string *err) const;

    /** Disable @p name, removing any installed productions. */
    bool disable(DebugTarget &t, const std::string &name,
                 std::string *err);

    /** Pattern-table slots @p name's productions occupy (may be empty). */
    std::vector<int> installedSlots(const std::string &name) const;

    bool isEnabled(const std::string &name) const;
    /** Enabled tool names, in enable order. */
    std::vector<std::string> enabledNames() const;

    /** Tool report text; fails when the tool is not enabled. */
    bool report(const std::string &name, std::string *out,
                std::string *err) const;

    /** FNV-1a digest of a tool's serialized state; 0 when disabled. */
    uint64_t digest(const std::string &name) const;

    /** @name Findings (ordered, capped; counters never stop) */
    ///@{
    const std::vector<ToolFinding> &findings() const { return findings_; }
    uint64_t findingsEmitted() const { return emitted_; }
    uint64_t findingsDropped() const { return dropped_; }
    /** Tools call this from onUop to publish a detection. */
    void emit(Tool &tool, ToolFinding f);
    ///@}

    std::vector<ToolStatsRow> statsRows() const;

    /** Cumulative ns spent inside tool bodies since construction —
     *  side-band measurement, excluded from digests and snapshots. */
    uint64_t toolNs() const { return toolNs_; }

    /** @name Checkpoint/persist serialization */
    ///@{
    Blobs snapshot() const;
    void restore(const Blobs &blobs);
    ///@}

    void onUop(const MicroOp &op) override;

  private:
    struct Entry
    {
        std::unique_ptr<Tool> tool;
        std::unique_ptr<ProductionSet> prods; ///< installed (DISE) or null
        Config config;
    };

    Entry *find(const std::string &name);
    const Entry *find(const std::string &name) const;

    DebugTarget *target_ = nullptr;
    std::vector<Entry> entries_; ///< enable order

    static constexpr size_t MaxStoredFindings = 4096;
    std::vector<ToolFinding> findings_;
    uint64_t emitted_ = 0;
    uint64_t dropped_ = 0;

    // Side-band overhead sampling (not part of the deterministic
    // state): µs of tool work per batch of armed µops.
    uint64_t batchNs_ = 0;
    unsigned batchOps_ = 0;
    uint64_t toolNs_ = 0;
};

} // namespace tools
} // namespace dise

#endif // DISE_TOOLS_TOOLSET_HH
