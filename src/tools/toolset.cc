#include "tools/toolset.hh"

#include "common/logging.hh"
#include "debug/target.hh"
#include "dise/production_set.hh"
#include "obs/metrics.hh"

namespace dise::tools {

namespace {

uint64_t
fnv1a(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** One tool's checkpoint blob: counters first, then tool state. */
std::vector<uint8_t>
packTool(const Tool &tool)
{
    std::vector<uint8_t> out;
    BlobWriter w{out};
    w.u64(tool.stats.uopsSeen);
    w.u64(tool.stats.checks);
    w.u64(tool.stats.suppressed);
    w.u64(tool.stats.findings);
    tool.save(w);
    return out;
}

} // namespace

ToolSet::ToolSet() = default;
ToolSet::~ToolSet() = default;

ToolSet::Entry *
ToolSet::find(const std::string &name)
{
    for (Entry &e : entries_)
        if (e.tool->name() == name)
            return &e;
    return nullptr;
}

const ToolSet::Entry *
ToolSet::find(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.tool->name() == name)
            return &e;
    return nullptr;
}

bool
ToolSet::enable(DebugTarget &t, const std::string &name,
                const Config &cfg, bool useProductions, std::string *err,
                std::vector<int> *slotsOut,
                const std::vector<int> *atSlots)
{
    if (find(name)) {
        if (err)
            *err = "tool '" + name + "' is already enabled";
        return false;
    }
    std::unique_ptr<Tool> tool = ToolRegistry::instance().make(name);
    if (!tool) {
        if (err)
            *err = "unknown tool '" + name + "'";
        return false;
    }
    for (const auto &kv : cfg)
        if (!tool->configure(kv.first, kv.second, err))
            return false;

    Entry e;
    e.config = cfg;
    if (useProductions) {
        auto prods = std::make_unique<ProductionSet>("tool:" + name);
        tool->buildProductions(*prods);
        if (prods->size()) {
            bool ok = atSlots && !atSlots->empty()
                          ? prods->installAt(t.engine, *atSlots, err)
                          : prods->install(t.engine, err);
            if (!ok)
                return false;
        }
        if (prods->installed())
            e.prods = std::move(prods);
    }
    if (slotsOut)
        *slotsOut = e.prods ? e.prods->slots() : std::vector<int>{};
    e.tool = std::move(tool);
    entries_.push_back(std::move(e));
    armed_ = true;
    return true;
}

bool
ToolSet::canEnable(const DebugTarget &t, const std::string &name,
                   const Config &cfg, bool useProductions,
                   std::string *err) const
{
    if (find(name)) {
        if (err)
            *err = "tool '" + name + "' is already enabled";
        return false;
    }
    std::unique_ptr<Tool> tool = ToolRegistry::instance().make(name);
    if (!tool) {
        if (err)
            *err = "unknown tool '" + name + "'";
        return false;
    }
    for (const auto &kv : cfg)
        if (!tool->configure(kv.first, kv.second, err))
            return false;
    if (useProductions) {
        ProductionSet prods("tool:" + name);
        tool->buildProductions(prods);
        size_t free = t.engine.patternCapacity() -
                      t.engine.productionCount();
        if (prods.size() > free) {
            if (err)
                *err = "pattern table cannot hold tool '" + name +
                       "' (" + std::to_string(prods.size()) +
                       " productions, " + std::to_string(free) +
                       " free slots)";
            return false;
        }
    }
    return true;
}

std::vector<int>
ToolSet::installedSlots(const std::string &name) const
{
    const Entry *e = find(name);
    return e && e->prods ? e->prods->slots() : std::vector<int>{};
}

bool
ToolSet::disable(DebugTarget &t, const std::string &name,
                 std::string *err)
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].tool->name() != name)
            continue;
        if (entries_[i].prods)
            entries_[i].prods->remove(t.engine);
        entries_.erase(entries_.begin() + i);
        armed_ = !entries_.empty();
        return true;
    }
    if (err)
        *err = "tool '" + name + "' is not enabled";
    return false;
}

bool
ToolSet::isEnabled(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
ToolSet::enabledNames() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.tool->name());
    return out;
}

bool
ToolSet::report(const std::string &name, std::string *out,
                std::string *err) const
{
    const Entry *e = find(name);
    if (!e) {
        if (err)
            *err = ToolRegistry::instance().make(name)
                       ? "tool '" + name + "' is not enabled"
                       : "unknown tool '" + name + "'";
        return false;
    }
    *out = e->tool->report();
    return true;
}

uint64_t
ToolSet::digest(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? fnv1a(packTool(*e->tool)) : 0;
}

void
ToolSet::emit(Tool &tool, ToolFinding f)
{
    f.tool = tool.name();
    f.seq = emitted_++;
    ++tool.stats.findings;
    if (findings_.size() >= MaxStoredFindings) {
        ++dropped_;
        return;
    }
    findings_.push_back(std::move(f));
}

std::vector<ToolStatsRow>
ToolSet::statsRows() const
{
    std::vector<ToolStatsRow> rows;
    rows.reserve(entries_.size());
    for (const Entry &e : entries_) {
        ToolStatsRow r;
        r.name = e.tool->name();
        r.uopsSeen = e.tool->stats.uopsSeen;
        r.checks = e.tool->stats.checks;
        r.suppressed = e.tool->stats.suppressed;
        r.findings = e.tool->stats.findings;
        rows.push_back(std::move(r));
    }
    return rows;
}

ToolSet::Blobs
ToolSet::snapshot() const
{
    Blobs blobs;
    // Set-level pseudo-entry (empty name): the ordered findings list
    // and its counters, so rollback rewinds findings with tool state.
    std::vector<uint8_t> setBlob;
    BlobWriter w{setBlob};
    w.u64(emitted_);
    w.u64(dropped_);
    w.u64(findings_.size());
    for (const ToolFinding &f : findings_) {
        w.str(f.tool);
        w.str(f.kind);
        w.u64(f.seq);
        w.u64(f.pc);
        w.u64(f.addr);
        w.u64(f.value);
        w.str(f.detail);
    }
    blobs.emplace_back(std::string(), std::move(setBlob));
    for (const Entry &e : entries_)
        blobs.emplace_back(e.tool->name(), packTool(*e.tool));
    return blobs;
}

void
ToolSet::restore(const Blobs &blobs)
{
    for (const auto &kv : blobs) {
        BlobReader r{kv.second.data(), kv.second.size()};
        if (kv.first.empty()) {
            emitted_ = r.u64();
            dropped_ = r.u64();
            uint64_t n = r.u64();
            findings_.clear();
            for (uint64_t i = 0; i < n && r.ok(); ++i) {
                ToolFinding f;
                f.tool = r.str();
                f.kind = r.str();
                f.seq = r.u64();
                f.pc = r.u64();
                f.addr = r.u64();
                f.value = r.u64();
                f.detail = r.str();
                findings_.push_back(std::move(f));
            }
            continue;
        }
        Entry *e = find(kv.first);
        if (!e) {
            // The enabled set is reconciled through replay
            // interventions before host state restores; a leftover
            // blob for a disabled tool means the caller got that
            // ordering wrong.
            warn("tool snapshot for '", kv.first,
                 "' has no enabled tool; dropped");
            continue;
        }
        e->tool->stats.uopsSeen = r.u64();
        e->tool->stats.checks = r.u64();
        e->tool->stats.suppressed = r.u64();
        e->tool->stats.findings = r.u64();
        if (!e->tool->restore(r) || !r.ok())
            warn("tool '", kv.first, "' state blob failed to restore");
    }
}

void
ToolSet::onUop(const MicroOp &op)
{
    if (!target_ || !op.isAppInst())
        return;
    uint64_t t0 = obs::nowNs();
    for (Entry &e : entries_) {
        ++e.tool->stats.uopsSeen;
        e.tool->onUop(op, *target_, *this);
    }
    uint64_t dt = obs::nowNs() - t0;
    batchNs_ += dt;
    toolNs_ += dt;
    if (++batchOps_ >= 1024) {
        obs::metrics().toolOverheadUs.observe(batchNs_ / 1000);
        batchNs_ = 0;
        batchOps_ = 0;
    }
}

} // namespace dise::tools
