#include "tools/tool.hh"

namespace dise::tools {

bool
Tool::configure(const std::string &key, const std::string &val,
                std::string *err)
{
    if (err)
        *err = "tool '" + name_ + "' has no config key '" + key + "'";
    return false;
}

bool
Tool::parseU64(const std::string &val, uint64_t *out)
{
    if (val.empty())
        return false;
    uint64_t v = 0;
    for (char c : val) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

ToolRegistry &
ToolRegistry::instance()
{
    static ToolRegistry reg;
    return reg;
}

ToolRegistry::ToolRegistry()
{
    add("asan", [] { return makeAsanTool(); });
    add("leakcheck", [] { return makeLeakcheckTool(); });
    add("coverage", [] { return makeCoverageTool(); });
    add("memtrace", [] { return makeMemtraceTool(); });
    add("addrleak", [] { return makeAddrleakTool(); });
}

void
ToolRegistry::add(std::string name, Factory f)
{
    factories_[std::move(name)] = f;
}

std::unique_ptr<Tool>
ToolRegistry::make(const std::string &name) const
{
    auto it = factories_.find(name);
    return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string>
ToolRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &kv : factories_)
        out.push_back(kv.first);
    return out;
}

} // namespace dise::tools
