/**
 * @file
 * The debug-tool library: reusable instrumentation tools shipped as
 * DISE production sets plus host-side tool state.
 *
 * The paper's thesis is that DISE makes debugging tools cheap enough to
 * leave on. This subsystem supplies the tools: each Tool is a named,
 * individually enable-able payload (asan, leakcheck, coverage,
 * memtrace, addrleak) that observes the functional µop stream through
 * the ToolSet (a UopObserver bound into every backend's StreamEnv) and,
 * on the DISE backend, additionally installs a ProductionSet modelling
 * the in-pipeline instrumentation the paper would synthesize — so the
 * timing model charges DISE expansion cost for the payload while
 * finding *detection* stays host-side and therefore bit-identical
 * across all five backends.
 *
 * Determinism contract: a tool's entire behaviour is a pure function of
 * the µop stream it has observed since enable plus its configuration.
 * No wall-clock, no host addresses, no iteration over unordered
 * containers in anything observable. That is what lets tool state
 * checkpoint/restore with time travel, replay deterministically in
 * interval workers, and survive hibernate/resurrect bit-identically.
 */

#ifndef DISE_TOOLS_TOOL_HH
#define DISE_TOOLS_TOOL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/microop.hh"
#include "isa/inst.hh"

namespace dise {

class DebugTarget;
class ProductionSet;

namespace tools {

/** One user-visible tool detection (becomes a ToolFinding event). */
struct ToolFinding
{
    std::string tool;   ///< emitting tool (filled by the ToolSet)
    std::string kind;   ///< e.g. "heap-oob", "use-after-free", "leak"
    uint64_t seq = 0;   ///< set-wide ordinal (filled by the ToolSet)
    Addr pc = 0;        ///< triggering instruction
    Addr addr = 0;      ///< offending address (0 when n/a)
    uint64_t value = 0; ///< kind-specific payload (size, count, ...)
    std::string detail; ///< one-line human-readable description
};

/** Deterministic per-tool counters (serialized with the tool state). */
struct ToolStats
{
    uint64_t uopsSeen = 0;   ///< app µops observed while enabled
    uint64_t checks = 0;     ///< payload checks actually performed
    uint64_t suppressed = 0; ///< checks elided as provably redundant
    uint64_t findings = 0;   ///< findings emitted
};

/** @name Bounds-checked little-endian blob serialization */
///@{
struct BlobWriter
{
    std::vector<uint8_t> &out;

    void u8(uint8_t v) { out.push_back(v); }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        out.insert(out.end(), s.begin(), s.end());
    }
};

struct BlobReader
{
    const uint8_t *p = nullptr;
    size_t n = 0;
    size_t off = 0;
    bool fail = false;

    uint8_t
    u8()
    {
        if (off + 1 > n) {
            fail = true;
            return 0;
        }
        return p[off++];
    }
    uint64_t
    u64()
    {
        if (off + 8 > n) {
            fail = true;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[off + i]) << (8 * i);
        off += 8;
        return v;
    }
    std::string
    str()
    {
        uint64_t len = u64();
        if (fail || off + len > n) {
            fail = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p + off), len);
        off += len;
        return s;
    }
    bool ok() const { return !fail; }
};
///@}

class ToolSet;

/** Base class for one enable-able debug tool. */
class Tool
{
  public:
    explicit Tool(std::string name) : name_(std::move(name)) {}
    virtual ~Tool() = default;

    const std::string &name() const { return name_; }

    /**
     * Apply one key=val configuration pair (before the first µop).
     * Unknown keys and malformed values fail with a message.
     */
    virtual bool configure(const std::string &key, const std::string &val,
                           std::string *err);

    /** Observe one app-level µop (oracle fields filled, program order). */
    virtual void onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) = 0;

    /** Human-readable findings/state report (wire tool-report verb). */
    virtual std::string report() const = 0;

    /** @name Deterministic state serialization (checkpoint/persist) */
    ///@{
    virtual void save(BlobWriter &w) const = 0;
    virtual bool restore(BlobReader &r) = 0;
    ///@}

    /**
     * Stage this tool's DISE production set (DISE backend only): the
     * in-pipeline payload the paper's hardware would execute. Sequences
     * must be semantically transparent — DISE registers only, ending in
     * T.INST — because finding detection is host-side.
     */
    virtual void buildProductions(ProductionSet &set) const {}

    /** Deterministic counters; serialized alongside the tool state. */
    ToolStats stats;

  protected:
    /** Parse an unsigned decimal config value. */
    static bool parseU64(const std::string &val, uint64_t *out);

  private:
    std::string name_;
};

/** Maps tool names to factories; built-ins register at construction. */
class ToolRegistry
{
  public:
    using Factory = std::unique_ptr<Tool> (*)();

    static ToolRegistry &instance();

    void add(std::string name, Factory f);
    std::unique_ptr<Tool> make(const std::string &name) const;
    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    ToolRegistry();
    std::map<std::string, Factory> factories_;
};

/** @name Built-in tool factories */
///@{
std::unique_ptr<Tool> makeAsanTool();
std::unique_ptr<Tool> makeLeakcheckTool();
std::unique_ptr<Tool> makeCoverageTool();
std::unique_ptr<Tool> makeMemtraceTool();
std::unique_ptr<Tool> makeAddrleakTool();
///@}

} // namespace tools
} // namespace dise

#endif // DISE_TOOLS_TOOL_HH
