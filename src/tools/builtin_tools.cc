/**
 * @file
 * The five built-in debug tools.
 *
 * Each tool is a host-side detector driven by the functional µop
 * oracle plus (DISE backend) a production set modelling the
 * in-pipeline payload the paper's hardware would execute. Detection
 * reads only oracle fields and architectural registers, so findings
 * are identical on every backend.
 *
 * All containers that reach save()/report() are ordered (std::map /
 * std::set) — determinism is part of the tool contract.
 */

#include <array>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "cpu/inst_stream.hh"
#include "debug/target.hh"
#include "dise/production_set.hh"
#include "tools/tool.hh"
#include "tools/toolset.hh"

namespace dise::tools {

namespace {

std::string
hexStr(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** 8-byte shadow granule index. */
constexpr Addr
granule(Addr a)
{
    return a >> 3;
}

bool
isSyscall(const MicroOp &op, int64_t code)
{
    return op.inst.op == Opcode::SYSCALL && op.inst.imm == code;
}

void
saveAddrSet(BlobWriter &w, const std::set<Addr> &s)
{
    w.u64(s.size());
    for (Addr a : s)
        w.u64(a);
}

bool
restoreAddrSet(BlobReader &r, std::set<Addr> &s)
{
    s.clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i)
        s.insert(r.u64());
    return r.ok();
}

/** "Compute the effective address into DISE scratch" payload: the
 *  in-pipeline work every memory-checking tool shares. dr6/dr7 are the
 *  tool scratch registers (the debugger's own productions use dr0-dr5),
 *  and the sequence ends in T.INST so semantics are untouched. */
void
addMemPayload(ProductionSet &set, const std::string &tool, OpClass cls)
{
    Production p;
    p.name = tool + (cls == OpClass::Load ? "-loads" : "-stores");
    p.pattern = Pattern::forClass(cls);
    p.replacement = {
        // dr6 = trigger base + trigger displacement (the access addr).
        TemplateInst::mem(Opcode::LDA, TRegField::reg(dr(6)),
                          TImmField::trigImm(), TRegField::trigRb()),
        // dr7 = dr6 >> 3 (shadow-granule index lookup).
        TemplateInst::opImm(Opcode::SRL_I, TRegField::reg(dr(6)), 3,
                            TRegField::reg(dr(7))),
        TemplateInst::trigInst(),
    };
    set.add(std::move(p));
}

/** "Capture the syscall argument into DISE scratch" payload for tools
 *  anchored on allocator hints / output syscalls. */
void
addSyscallPayload(ProductionSet &set, const std::string &tool)
{
    Production p;
    p.name = tool + "-syscalls";
    p.pattern = Pattern::forOpcode(Opcode::SYSCALL);
    p.replacement = {
        TemplateInst::mem(Opcode::LDA, TRegField::reg(dr(6)),
                          TImmField::imm(0), TRegField::reg(reg::a0)),
        TemplateInst::trigInst(),
    };
    set.add(std::move(p));
}

// ------------------------------------------------------------------ asan

/** Redzone poisoning around hinted allocations: out-of-bounds and
 *  use-after-free detection on an 8-byte shadow granule map. */
class AsanTool : public Tool
{
  public:
    AsanTool() : Tool("asan") {}

    bool
    configure(const std::string &key, const std::string &val,
              std::string *err) override
    {
        if (key == "redzone") {
            uint64_t v;
            if (!parseU64(val, &v) || v == 0 || v > 4096) {
                if (err)
                    *err = "asan: redzone must be 1..4096 bytes, got '" +
                           val + "'";
                return false;
            }
            redzone_ = v;
            return true;
        }
        return Tool::configure(key, val, err);
    }

    void
    onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) override
    {
        if (isSyscall(op, SysAllocHint)) {
            Addr base = t.arch.read(reg::a0);
            uint64_t size = t.arch.read(reg::a1);
            for (Addr g = granule(base - redzone_); g < granule(base);
                 ++g)
                shadow_[g] = Redzone;
            for (Addr g = granule(base);
                 g < granule(base + size + 7); ++g)
                shadow_.erase(g);
            for (Addr g = granule(base + size + 7);
                 g < granule(base + size + 7) + granule(redzone_); ++g)
                shadow_[g] = Redzone;
            allocs_[base] = size;
            return;
        }
        if (isSyscall(op, SysFreeHint)) {
            Addr base = t.arch.read(reg::a0);
            auto it = allocs_.find(base);
            if (it == allocs_.end()) {
                if (seen_.insert({op.pc, base}).second)
                    set.emit(*this,
                             {"", "invalid-free", 0, op.pc, base, 0,
                              "free of unallocated block " +
                                  hexStr(base)});
                return;
            }
            for (Addr g = granule(base);
                 g < granule(base + it->second + 7); ++g)
                shadow_[g] = Freed;
            allocs_.erase(it);
            return;
        }
        if (!op.memBytes ||
            (!op.inst.isLoad() && !op.inst.isStore()))
            return;
        ++stats.checks;
        for (Addr g = granule(op.effAddr);
             g < granule(op.effAddr + op.memBytes + 7); ++g) {
            auto it = shadow_.find(g);
            if (it == shadow_.end())
                continue;
            const char *kind = it->second == Redzone
                                   ? "heap-oob"
                                   : "use-after-free";
            if (seen_.insert({op.pc, g}).second)
                set.emit(*this,
                         {"", kind, 0, op.pc, op.effAddr, op.memBytes,
                          std::string(op.inst.isStore() ? "store"
                                                        : "load") +
                              " of " + std::to_string(op.memBytes) +
                              " bytes at " + hexStr(op.effAddr)});
            break;
        }
    }

    std::string
    report() const override
    {
        std::ostringstream os;
        os << "asan: redzone=" << redzone_ << "B, "
           << stats.checks << " accesses checked, " << stats.findings
           << " findings, " << allocs_.size() << " live allocations, "
           << shadow_.size() << " poisoned granules\n";
        for (const auto &kv : allocs_)
            os << "  live " << hexStr(kv.first) << " size " << kv.second
               << "\n";
        return os.str();
    }

    void
    save(BlobWriter &w) const override
    {
        w.u64(redzone_);
        w.u64(shadow_.size());
        for (const auto &kv : shadow_) {
            w.u64(kv.first);
            w.u8(kv.second);
        }
        w.u64(allocs_.size());
        for (const auto &kv : allocs_) {
            w.u64(kv.first);
            w.u64(kv.second);
        }
        w.u64(seen_.size());
        for (const auto &pg : seen_) {
            w.u64(pg.first);
            w.u64(pg.second);
        }
    }

    bool
    restore(BlobReader &r) override
    {
        redzone_ = r.u64();
        shadow_.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            Addr g = r.u64();
            shadow_[g] = r.u8();
        }
        allocs_.clear();
        n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            Addr b = r.u64();
            allocs_[b] = r.u64();
        }
        seen_.clear();
        n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            uint64_t pc = r.u64();
            seen_.insert({pc, r.u64()});
        }
        return r.ok();
    }

    void
    buildProductions(ProductionSet &set) const override
    {
        addMemPayload(set, "asan", OpClass::Load);
        addMemPayload(set, "asan", OpClass::Store);
    }

  private:
    enum : uint8_t { Redzone = 1, Freed = 2 };

    uint64_t redzone_ = 32;
    std::map<Addr, uint8_t> shadow_; ///< granule -> poison state
    std::map<Addr, uint64_t> allocs_;
    std::set<std::pair<uint64_t, uint64_t>> seen_; ///< (pc, granule)
};

// ------------------------------------------------------------- leakcheck

/** Allocation/free ledger with an end-of-run leak report. */
class LeakcheckTool : public Tool
{
  public:
    LeakcheckTool() : Tool("leakcheck") {}

    void
    onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) override
    {
        if (isSyscall(op, SysAllocHint)) {
            ++stats.checks;
            Addr base = t.arch.read(reg::a0);
            ledger_[base] = {t.arch.read(reg::a1), op.pc};
            ++allocs_;
            return;
        }
        if (isSyscall(op, SysFreeHint)) {
            ++stats.checks;
            Addr base = t.arch.read(reg::a0);
            auto it = ledger_.find(base);
            if (it == ledger_.end()) {
                if (badFrees_.insert(op.pc).second)
                    set.emit(*this,
                             {"", "bad-free", 0, op.pc, base, 0,
                              "free of " + hexStr(base) +
                                  " which is not allocated"});
                return;
            }
            ledger_.erase(it);
            ++frees_;
            return;
        }
        if (op.isHalt && !reportedHalt_) {
            reportedHalt_ = true;
            for (const auto &kv : ledger_)
                set.emit(*this,
                         {"", "leak", 0, kv.second.second, kv.first,
                          kv.second.first,
                          std::to_string(kv.second.first) +
                              " bytes at " + hexStr(kv.first) +
                              " allocated at " +
                              hexStr(kv.second.second) +
                              " never freed"});
        }
    }

    std::string
    report() const override
    {
        uint64_t leakedBytes = 0;
        for (const auto &kv : ledger_)
            leakedBytes += kv.second.first;
        std::ostringstream os;
        os << "leakcheck: " << allocs_ << " allocs, " << frees_
           << " frees, " << ledger_.size() << " live blocks ("
           << leakedBytes << " bytes)"
           << (reportedHalt_ ? ", end-of-run report emitted" : "")
           << "\n";
        for (const auto &kv : ledger_)
            os << "  live " << hexStr(kv.first) << " size "
               << kv.second.first << " from " << hexStr(kv.second.second)
               << "\n";
        return os.str();
    }

    void
    save(BlobWriter &w) const override
    {
        w.u64(allocs_);
        w.u64(frees_);
        w.u8(reportedHalt_ ? 1 : 0);
        w.u64(ledger_.size());
        for (const auto &kv : ledger_) {
            w.u64(kv.first);
            w.u64(kv.second.first);
            w.u64(kv.second.second);
        }
        saveAddrSet(w, badFrees_);
    }

    bool
    restore(BlobReader &r) override
    {
        allocs_ = r.u64();
        frees_ = r.u64();
        reportedHalt_ = r.u8() != 0;
        ledger_.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            Addr b = r.u64();
            uint64_t size = r.u64();
            ledger_[b] = {size, r.u64()};
        }
        return restoreAddrSet(r, badFrees_);
    }

    void
    buildProductions(ProductionSet &set) const override
    {
        addSyscallPayload(set, "leakcheck");
    }

  private:
    std::map<Addr, std::pair<uint64_t, Addr>> ledger_; ///< base->(size,pc)
    std::set<Addr> badFrees_; ///< pcs already reported
    uint64_t allocs_ = 0;
    uint64_t frees_ = 0;
    bool reportedHalt_ = false;
};

// -------------------------------------------------------------- coverage

/** drcov-style basic-block hit map, dumpable over the wire. */
class CoverageTool : public Tool
{
  public:
    CoverageTool() : Tool("coverage") {}

    void
    onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) override
    {
        if (atBlockStart_) {
            ++stats.checks;
            ++hits_[op.pc];
        }
        atBlockStart_ = op.isCtrl;
    }

    std::string
    report() const override
    {
        uint64_t entries = 0;
        for (const auto &kv : hits_)
            entries += kv.second;
        std::ostringstream os;
        os << "coverage: " << hits_.size() << " blocks, " << entries
           << " block entries\n";
        size_t listed = 0;
        for (const auto &kv : hits_) {
            if (++listed > 256) {
                os << "  ... (" << hits_.size() - 256 << " more)\n";
                break;
            }
            os << "  block " << hexStr(kv.first) << " hits "
               << kv.second << "\n";
        }
        return os.str();
    }

    void
    save(BlobWriter &w) const override
    {
        w.u8(atBlockStart_ ? 1 : 0);
        w.u64(hits_.size());
        for (const auto &kv : hits_) {
            w.u64(kv.first);
            w.u64(kv.second);
        }
    }

    bool
    restore(BlobReader &r) override
    {
        atBlockStart_ = r.u8() != 0;
        hits_.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            Addr pc = r.u64();
            hits_[pc] = r.u64();
        }
        return r.ok();
    }

    void
    buildProductions(ProductionSet &set) const override
    {
        // Count block entries in dr7 at every conditional branch — the
        // in-pipeline analog of the host-side hit map.
        Production p;
        p.name = "coverage-branches";
        p.pattern = Pattern::forClass(OpClass::CtrlBr);
        p.replacement = {
            TemplateInst::opImm(Opcode::ADDQ_I, TRegField::reg(dr(7)),
                                1, TRegField::reg(dr(7))),
            TemplateInst::trigInst(),
        };
        set.add(std::move(p));
    }

  private:
    std::map<Addr, uint64_t> hits_;
    bool atBlockStart_ = true;
};

// -------------------------------------------------------------- memtrace

/** Compacted load/store trace with same-address redundancy
 *  suppression (arXiv 1703.02873): a direct-mapped table of recently
 *  traced granules elides records the trace can prove redundant. */
class MemtraceTool : public Tool
{
  public:
    MemtraceTool() : Tool("memtrace") { table_.fill(~uint64_t{0}); }

    bool
    configure(const std::string &key, const std::string &val,
              std::string *err) override
    {
        if (key == "suppress") {
            if (val != "0" && val != "1") {
                if (err)
                    *err = "memtrace: suppress must be 0 or 1, got '" +
                           val + "'";
                return false;
            }
            suppress_ = val == "1";
            return true;
        }
        return Tool::configure(key, val, err);
    }

    void
    onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) override
    {
        if (!op.memBytes ||
            (!op.inst.isLoad() && !op.inst.isStore()))
            return;
        ++stats.checks;
        uint64_t g = granule(op.effAddr);
        unsigned slot = static_cast<unsigned>(g & (TableSlots - 1));
        if (suppress_ && table_[slot] == g) {
            ++stats.suppressed;
            return;
        }
        table_[slot] = g;
        ++recorded_;
        // The compaction payload: fold the access into the running
        // trace digest (this is the work suppression elides).
        auto mix = [&](uint64_t v) {
            digest_ ^= v;
            digest_ *= 1099511628211ull;
        };
        mix(op.effAddr);
        mix(op.pc);
        mix(op.memBytes);
        mix(op.inst.isStore() ? op.storeNew : 1);
        if (ring_.size() < RingCap)
            ring_.push_back({op.pc, op.effAddr, op.memBytes,
                             op.inst.isStore()});
    }

    std::string
    report() const override
    {
        std::ostringstream os;
        os << "memtrace: suppress=" << (suppress_ ? 1 : 0) << ", "
           << stats.checks << " accesses, " << recorded_
           << " recorded, " << stats.suppressed
           << " suppressed, trace digest " << hexStr(digest_) << "\n";
        size_t from = ring_.size() > 16 ? ring_.size() - 16 : 0;
        for (size_t i = from; i < ring_.size(); ++i)
            os << "  " << (ring_[i].store ? "st" : "ld") << " "
               << ring_[i].bytes << "B " << hexStr(ring_[i].addr)
               << " @ " << hexStr(ring_[i].pc) << "\n";
        return os.str();
    }

    void
    save(BlobWriter &w) const override
    {
        w.u8(suppress_ ? 1 : 0);
        w.u64(recorded_);
        w.u64(digest_);
        for (uint64_t v : table_)
            w.u64(v);
        w.u64(ring_.size());
        for (const Rec &rec : ring_) {
            w.u64(rec.pc);
            w.u64(rec.addr);
            w.u64(rec.bytes);
            w.u8(rec.store ? 1 : 0);
        }
    }

    bool
    restore(BlobReader &r) override
    {
        suppress_ = r.u8() != 0;
        recorded_ = r.u64();
        digest_ = r.u64();
        for (uint64_t &v : table_)
            v = r.u64();
        ring_.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
            Rec rec;
            rec.pc = r.u64();
            rec.addr = r.u64();
            rec.bytes = static_cast<unsigned>(r.u64());
            rec.store = r.u8() != 0;
            ring_.push_back(rec);
        }
        return r.ok();
    }

    void
    buildProductions(ProductionSet &set) const override
    {
        addMemPayload(set, "memtrace", OpClass::Load);
        addMemPayload(set, "memtrace", OpClass::Store);
    }

  private:
    struct Rec
    {
        Addr pc = 0;
        Addr addr = 0;
        unsigned bytes = 0;
        bool store = false;
    };

    static constexpr unsigned TableSlots = 64;
    static constexpr size_t RingCap = 512;

    bool suppress_ = true;
    std::array<uint64_t, TableSlots> table_;
    uint64_t recorded_ = 0;
    uint64_t digest_ = 1469598103934665603ull;
    std::vector<Rec> ring_;
};

// -------------------------------------------------------------- addrleak

/** Taint tracking from address sources (allocator hints) to output
 *  sinks (put syscalls), after zzoru/addr-leaks. */
class AddrleakTool : public Tool
{
  public:
    AddrleakTool() : Tool("addrleak") {}

    void
    onUop(const MicroOp &op, DebugTarget &t, ToolSet &set) override
    {
        const Inst &in = op.inst;
        if (in.op == Opcode::SYSCALL) {
            ++stats.checks;
            if (in.imm == SysAllocHint) {
                // The returned block address is the taint source.
                setTaint(reg::a0, true);
            } else if (in.imm == SysPutInt || in.imm == SysPutChar) {
                if (taintOf(reg::a0) &&
                    sinks_.insert(op.pc).second)
                    set.emit(*this,
                             {"", "addr-leak", 0, op.pc,
                              t.arch.read(reg::a0), 0,
                              "address value " +
                                  hexStr(t.arch.read(reg::a0)) +
                                  " reaches an output sink"});
            }
            return;
        }
        if (in.isLoad() && op.memBytes) {
            ++stats.checks;
            setTaint(in.ra, taintMem_.count(granule(op.effAddr)) != 0);
            return;
        }
        if (in.isStore() && op.memBytes) {
            ++stats.checks;
            if (taintOf(in.ra))
                taintMem_.insert(granule(op.effAddr));
            else
                taintMem_.erase(granule(op.effAddr));
            return;
        }
        RegId d = dstReg(in);
        if (!d.valid())
            return;
        ++stats.checks;
        SrcRegs srcs = srcRegs(in);
        bool tainted = taintOf(srcs.r[0]) || taintOf(srcs.r[1]);
        setTaint(d, tainted);
    }

    std::string
    report() const override
    {
        std::ostringstream os;
        unsigned regs = 0;
        for (unsigned i = 0; i < NumLogicalRegs; ++i)
            if (taintRegs_ & (uint64_t{1} << i))
                ++regs;
        os << "addrleak: " << stats.findings << " leaks at "
           << sinks_.size() << " sinks, " << regs
           << " tainted registers, " << taintMem_.size()
           << " tainted granules\n";
        for (Addr pc : sinks_)
            os << "  sink @ " << hexStr(pc) << "\n";
        return os.str();
    }

    void
    save(BlobWriter &w) const override
    {
        w.u64(taintRegs_);
        saveAddrSet(w, taintMem_);
        saveAddrSet(w, sinks_);
    }

    bool
    restore(BlobReader &r) override
    {
        taintRegs_ = r.u64();
        return restoreAddrSet(r, taintMem_) &&
               restoreAddrSet(r, sinks_);
    }

    void
    buildProductions(ProductionSet &set) const override
    {
        addSyscallPayload(set, "addrleak");
    }

  private:
    bool
    taintOf(RegId r) const
    {
        if (!r.valid() || r.isZero())
            return false;
        return (taintRegs_ & (uint64_t{1} << r.flat())) != 0;
    }

    void
    setTaint(RegId r, bool on)
    {
        if (!r.valid() || r.isZero())
            return;
        if (on)
            taintRegs_ |= uint64_t{1} << r.flat();
        else
            taintRegs_ &= ~(uint64_t{1} << r.flat());
    }

    uint64_t taintRegs_ = 0; ///< bit per flat logical register
    std::set<Addr> taintMem_; ///< tainted 8-byte granules
    std::set<Addr> sinks_;    ///< leak pcs already reported
};

} // namespace

std::unique_ptr<Tool>
makeAsanTool()
{
    return std::make_unique<AsanTool>();
}

std::unique_ptr<Tool>
makeLeakcheckTool()
{
    return std::make_unique<LeakcheckTool>();
}

std::unique_ptr<Tool>
makeCoverageTool()
{
    return std::make_unique<CoverageTool>();
}

std::unique_ptr<Tool>
makeMemtraceTool()
{
    return std::make_unique<MemtraceTool>();
}

std::unique_ptr<Tool>
makeAddrleakTool()
{
    return std::make_unique<AddrleakTool>();
}

} // namespace dise::tools
