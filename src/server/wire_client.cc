#include "server/wire_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace dise::server {

WireClient::~WireClient()
{
    close();
}

bool
WireClient::connectTo(uint16_t port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err)
            *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_.store(fd);
    {
        std::lock_guard<std::mutex> lk(replyMu_);
        dead_ = false;
        replies_.clear();
    }
    reader_ = std::thread([this] { readerLoop(); });
    return true;
}

void
WireClient::close()
{
    int fd = fd_.exchange(-1);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
    if (reader_.joinable())
        reader_.join();
    if (fd >= 0)
        ::close(fd);
}

void
WireClient::readerLoop()
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        int fd = fd_.load();
        if (fd < 0)
            break;
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (line == "event" || line.rfind("event ", 0) == 0) {
                if (onEvent_)
                    onEvent_(line);
                continue;
            }
            std::lock_guard<std::mutex> lk(replyMu_);
            replies_.push_back(std::move(line));
            replyCv_.notify_all();
        }
    }
    std::lock_guard<std::mutex> lk(replyMu_);
    dead_ = true;
    replyCv_.notify_all();
}

bool
WireClient::roundTripRaw(const std::string &line, std::string &reply,
                         std::string *err)
{
    std::lock_guard<std::mutex> call(callMu_);
    int fd = fd_.load();
    if (fd < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    std::unique_lock<std::mutex> lk(replyMu_);
    // Generous bound: a worker mid-adopt replays a whole session
    // before answering. A wedged peer still cannot hang us forever.
    if (!replyCv_.wait_for(lk, std::chrono::seconds(120), [this] {
            return dead_ || !replies_.empty();
        })) {
        if (err)
            *err = "reply timeout";
        return false;
    }
    if (replies_.empty()) {
        if (err)
            *err = "connection closed";
        return false;
    }
    reply = std::move(replies_.front());
    replies_.pop_front();
    return true;
}

bool
WireClient::call(Request req, Response &resp, std::string *err)
{
    if (!req.seq)
        req.seq = seq_.fetch_add(1);
    std::string reply;
    if (!roundTripRaw(encodeRequest(req), reply, err))
        return false;
    if (!decodeResponse(reply, resp, err))
        return false;
    return true;
}

} // namespace dise::server
