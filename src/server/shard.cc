#include "server/shard.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace dise::server {

namespace {

/** Child side: run a DebugServer until the lifeline pipe hits EOF.
 *  Never returns — exits via _exit so no parent-process atexit
 *  handlers (test frameworks, coverage dumpers) run twice. */
[[noreturn]] void
runShardChild(const ShardProcessSpec &spec, int handshakeWr,
              int lifelineRd)
{
    ::signal(SIGPIPE, SIG_IGN);

    DebugServerOptions opts = spec.server;
    opts.port = 0; // always ephemeral; the supervisor owns the public port
    opts.idStart = spec.index + 1;
    opts.idStride = spec.total ? spec.total : 1;

    DebugServer server(opts, spec.factory);
    char line[16];
    if (!server.start()) {
        int n = std::snprintf(line, sizeof line, "0\n");
        (void)!::write(handshakeWr, line, static_cast<size_t>(n));
        ::_exit(1);
    }
    int n = std::snprintf(line, sizeof line, "%u\n",
                          static_cast<unsigned>(server.port()));
    if (::write(handshakeWr, line, static_cast<size_t>(n)) != n)
        ::_exit(1);
    ::close(handshakeWr);

    // Park until the supervisor hangs up (or dies — same EOF).
    char c;
    while (::read(lifelineRd, &c, 1) > 0) {
    }
    server.stop();
    ::_exit(0);
}

} // namespace

bool
spawnShardProcess(const ShardProcessSpec &spec, ShardProcess &out,
                  std::string *err)
{
    int handshake[2] = {-1, -1};
    int lifeline[2] = {-1, -1};
    if (::pipe(handshake) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(lifeline) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        ::close(handshake[0]);
        ::close(handshake[1]);
        return false;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        if (err)
            *err = std::string("fork: ") + std::strerror(errno);
        ::close(handshake[0]);
        ::close(handshake[1]);
        ::close(lifeline[0]);
        ::close(lifeline[1]);
        return false;
    }
    if (pid == 0) {
        ::close(handshake[0]);
        ::close(lifeline[1]);
        runShardChild(spec, handshake[1], lifeline[0]);
    }

    ::close(handshake[1]);
    ::close(lifeline[0]);

    // Read the port handshake (one line). The child writes it right
    // after bind, so a blocking read is fine; EOF means it died.
    std::string text;
    char c;
    while (text.size() < 15 && ::read(handshake[0], &c, 1) == 1) {
        if (c == '\n')
            break;
        text.push_back(c);
    }
    ::close(handshake[0]);
    unsigned long port = text.empty() ? 0 : std::strtoul(text.c_str(),
                                                         nullptr, 10);
    if (!port || port > 65535) {
        ::close(lifeline[1]);
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (err)
            *err = "shard " + std::to_string(spec.index) +
                   " failed to start";
        return false;
    }

    out.pid = pid;
    out.port = static_cast<uint16_t>(port);
    out.lifeline = lifeline[1];
    return true;
}

void
shutdownShardProcess(ShardProcess &p, unsigned graceMs)
{
    if (p.pid < 0)
        return;
    if (p.lifeline >= 0) {
        ::close(p.lifeline);
        p.lifeline = -1;
    }
    int status = 0;
    for (unsigned waited = 0; waited < graceMs; waited += 20) {
        pid_t r = ::waitpid(p.pid, &status, WNOHANG);
        if (r == p.pid || (r < 0 && errno == ECHILD)) {
            p.pid = -1;
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(p.pid, SIGKILL);
    ::waitpid(p.pid, &status, 0);
    p.pid = -1;
}

} // namespace dise::server
