/**
 * @file
 * The session table of the multi-session debug server: N independent
 * DebugSession instances — each with its own Program, backend,
 * TimeTravel controller, and EventQueue — created, looked up, and
 * destroyed under one admission cap.
 *
 * Sessions are share-nothing: no target state is shared between them,
 * so slices of different sessions run in parallel without
 * coordination. What IS shared is the bookkeeping:
 *
 *  - the id → session map (guarded by the manager's mutex);
 *  - per-session progress counters (µops, instructions, events),
 *    published as atomics after every execution slice so
 *    server-level stat rollups never block on a running session;
 *  - admission counters (created / destroyed / rejected / peak).
 *
 * Lifetime: sessions are handed out as shared_ptr. destroy() removes
 * a session from the table and marks it closing; a client mid-run
 * observes the flag at its next slice boundary and aborts, and the
 * object is reclaimed when the last holder lets go — teardown mid-run
 * is safe by construction.
 */

#ifndef DISE_SERVER_SESSION_MANAGER_HH
#define DISE_SERVER_SESSION_MANAGER_HH

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "persist/store.hh"
#include "session/debug_session.hh"

namespace dise::server {

/**
 * Destination for pushed session events (one per subscribed
 * connection). deliver() returning false drops the subscription — the
 * hangup path for dead or hopelessly slow consumers.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;
    virtual bool deliver(const SessionEvent &ev) = 0;
    /** Last-gasp notification as the subscription is dropped (deliver
     *  failed). Must not block: the peer is known to be wedged, so
     *  implementations send best-effort or not at all. */
    virtual void farewell(const SessionEvent &ev) { (void)ev; }
};

/** One hosted target plus the concurrency state the serving layer
 *  needs around it. */
class ManagedSession
{
  public:
    ManagedSession(uint64_t id, std::string workload, Program prog,
                   SessionOptions opts, bool exclusive)
        : id(id), workload(std::move(workload)), exclusive(exclusive),
          session(std::move(prog), std::move(opts))
    {
    }

    const uint64_t id;
    const std::string workload;
    /** Bound to one connection (RSP's one-target model): never handed
     *  out by select, so its owner may drive it lock-free. */
    const bool exclusive;

    DebugSession session;
    /** Serializes shared (wire-selected) access to the session. */
    std::mutex mu;
    /** Held by the scheduler worker for the duration of each job
     *  slice; RSP busy peeks (`g`/`m`/`p`, monitor tool verbs while a
     *  non-stop job runs) take it to land at a slice boundary. */
    std::mutex sliceMu;
    /** Set by destroy(); observed at the next slice boundary. */
    std::atomic<bool> closing{false};

    /** @name Published progress (read without the session lock) */
    ///@{
    std::atomic<uint64_t> uops{0};
    std::atomic<uint64_t> appInsts{0};
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> slices{0};
    /** Preemptible jobs completed on this session. */
    std::atomic<uint64_t> jobs{0};
    /** Events delivered to subscribers. */
    std::atomic<uint64_t> eventsPushed{0};
    /** Subscriptions dropped because the peer stopped draining. */
    std::atomic<uint64_t> droppedSinks{0};
    /** Logical-clock stamp of the last verb served (LRU eviction
     *  order; set via SessionManager::touch()). */
    std::atomic<uint64_t> lastTouch{0};

    /** Refresh the published counters from the session (call with
     *  exclusive session access, e.g. after a slice). */
    void
    publishProgress()
    {
        SessionStats st = session.stats();
        uops.store(st.time, std::memory_order_relaxed);
        appInsts.store(st.appInsts, std::memory_order_relaxed);
        events.store(st.events, std::memory_order_relaxed);
    }
    ///@}

    /** @name Async event push
     * Subscribers receive every queued session event in delivery
     * order. Drains happen wherever exclusive session access is
     * already held (after each job slice and each wire verb), so the
     * queue itself needs no extra locking; the sink list has its own
     * mutex because subscribe/unsubscribe arrive from other
     * connections' threads. Backpressure is the transport's: a slow
     * subscriber blocks the pushing slice boundary until its socket
     * drains or its send times out (then the sink reports failure and
     * is dropped). */
    ///@{
    void
    addSink(std::shared_ptr<EventSink> sink)
    {
        std::lock_guard<std::mutex> lk(sinkMu_);
        sinks_.push_back(std::move(sink));
    }

    void
    removeSink(const std::shared_ptr<EventSink> &sink)
    {
        std::lock_guard<std::mutex> lk(sinkMu_);
        for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
            if (*it == sink) {
                sinks_.erase(it);
                return;
            }
        }
    }

    size_t
    subscriberCount() const
    {
        std::lock_guard<std::mutex> lk(sinkMu_);
        return sinks_.size();
    }

    /** Drain the event queue to the subscribers (call with exclusive
     *  session access). With no subscribers the queue keeps
     *  accumulating for in-process consumers, as before. */
    void
    pushEvents()
    {
        std::lock_guard<std::mutex> lk(sinkMu_);
        if (sinks_.empty())
            return;
        // Spans any backpressure stall: a full socket buffer parks
        // deliver() inside this scope until TCP drains or times out.
        TRACE_SPAN("session", "session.push");
        uint64_t t0 = obs::nowNs();
        bool pushed = false;
        for (const SessionEvent &ev : session.events().drain()) {
            pushed = true;
            eventsPushed.fetch_add(1, std::memory_order_relaxed);
            for (auto it = sinks_.begin(); it != sinks_.end();) {
                if ((*it)->deliver(ev)) {
                    ++it;
                    continue;
                }
                // Graceful drop: a final best-effort farewell line so
                // the peer (if it ever drains again) learns WHY its
                // event stream went quiet, then the unsubscribe
                // bookkeeping instead of a silent erase.
                SessionEvent bye;
                bye.kind = SessionEventKind::SubscriberDropped;
                bye.time = ev.time;
                bye.appInsts = ev.appInsts;
                (*it)->farewell(bye);
                it = sinks_.erase(it);
                droppedSinks.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (pushed)
            obs::metrics().eventPushUs.observe(obs::usSince(t0));
    }
    ///@}

  private:
    mutable std::mutex sinkMu_;
    std::vector<std::shared_ptr<EventSink>> sinks_;
};

using ManagedSessionPtr = std::shared_ptr<ManagedSession>;

struct SessionManagerOptions
{
    /** Admission cap; 0 = unlimited. */
    unsigned maxSessions = 8;
    /** Template for new sessions (backend overridden per create). */
    SessionOptions session{};
    /** First id this manager mints and the step between minted ids.
     *  A sharded server gives worker k idStart=k+1, idStride=N so the
     *  shards create disjoint ids with no coordination (adopted /
     *  migrated-in ids may break the residue; minting skips past
     *  them while keeping it). */
    uint64_t idStart = 1;
    uint64_t idStride = 1;
};

class SessionManager
{
  public:
    /**
     * Resolves a workload name to a Program. The default factory
     * serves "demo" (the heisenbug scenario) and the six synthetic
     * SPEC workloads by name.
     */
    using ProgramFactory =
        std::function<bool(const std::string &name, Program &out)>;

    explicit SessionManager(SessionManagerOptions opts = {},
                            ProgramFactory factory = {});

    /**
     * Create a session for @p workload under the admission cap. At the
     * cap, a store-backed manager hibernates the least-recently-used
     * idle session (not exclusive, no subscribers, not held by any
     * connection or job) to make room; only when nothing is evictable
     * does admission reject. Returns nullptr (and fills @p err) on an
     * unknown workload or a genuine rejection.
     */
    ManagedSessionPtr create(const std::string &workload,
                             BackendKind backend,
                             bool exclusive = false,
                             std::string *err = nullptr);

    /** Look a session up; nullptr when unknown. A hibernated id is
     *  transparently resurrected from the store (rebuild + replay to
     *  its persisted position, digest-verified); a resurrection
     *  failure quarantines the image and reports a typed error in
     *  @p err. @p forSelect additionally refuses exclusive
     *  (per-connection) sessions. */
    ManagedSessionPtr find(uint64_t id, bool forSelect = false,
                           std::string *err = nullptr);

    /**
     * Remove @p id from the table and mark it closing. In-flight
     * drivers abort at their next slice; the final per-session
     * counters fold into the retired totals. A hibernated id is
     * erased from the store instead.
     */
    bool destroy(uint64_t id);

    /** Live AND hibernated session ids. */
    std::vector<uint64_t> ids() const;
    size_t count() const;
    unsigned maxSessions() const { return opts_.maxSessions; }
    const SessionOptions &sessionTemplate() const { return opts_.session; }

    /** @name Durable sessions */
    ///@{
    /** Attach an (opened) on-disk store and re-admit its entries as
     *  hibernated sessions, resurrected lazily on first find(). */
    void adoptStore(persist::SessionStore *store);
    persist::SessionStore *store() const { return store_; }

    /** Evict @p id to the store (export + put + drop from the live
     *  table). Refuses — session intact — when it is exclusive, has
     *  subscribers, is held by a connection or job, or the persistence
     *  path fails. */
    bool hibernate(uint64_t id, std::string *err = nullptr);

    /** Write a crash-consistent image of @p id without evicting it.
     *  Fills @p digest (when given) with the persisted state digest. */
    bool persist(uint64_t id, std::string *err = nullptr,
                 uint64_t *digest = nullptr);

    /** Stamp @p ms as just-used (LRU eviction order). */
    void touch(ManagedSession &ms);
    ///@}

    /** @name Live migration (sharded servers)
     * extract() serializes an idle session out of this manager — same
     * idle checks as hibernate(), but the image leaves in memory and
     * the session (plus any on-disk artifact) is gone from this shard
     * on success. adopt() is the other half: rebuild + digest-verified
     * replay from a wire-carried image, admitted under the cap and
     * re-persisted to this shard's store so a crash right after the
     * migration still recovers it. Both fail with no state change. */
    ///@{
    bool extract(uint64_t id, persist::SessionImage &img,
                 std::string *err = nullptr);
    ManagedSessionPtr adopt(const persist::SessionImage &img,
                            std::string *err = nullptr);
    ///@}

    /** Admission counters + per-session rollups (live + retired).
     *  Never blocks on a running session. */
    ServerStats stats() const;

  private:
    ManagedSessionPtr resurrect(uint64_t id, std::string *err);
    bool exportToStore(ManagedSession &ms, std::string *err);
    /** Bump nextId_ past @p id, preserving the idStart residue. Call
     *  with mu_ held. */
    void reserveIdLocked(uint64_t id);
    /** Pick the LRU evictable victim id not in @p tried (0 = none).
     *  Call with mu_ held. */
    uint64_t victimLocked(const std::set<uint64_t> &tried) const;

    SessionManagerOptions opts_;
    ProgramFactory factory_;

    persist::SessionStore *store_ = nullptr;
    /** Serializes resurrections (so two selects of one hibernated id
     *  produce one rebuild, the second finding it live). */
    std::mutex resurrectMu_;

    mutable std::mutex mu_;
    std::map<uint64_t, ManagedSessionPtr> sessions_;
    /** id → workload of sessions living only in the store. */
    std::map<uint64_t, std::string> hibernated_;
    std::atomic<uint64_t> clock_{0};
    uint64_t nextId_ = 1;
    uint64_t created_ = 0;
    uint64_t destroyed_ = 0;
    uint64_t rejected_ = 0;
    uint64_t peak_ = 0;
    uint64_t evictions_ = 0;
    uint64_t resurrections_ = 0;
    uint64_t migratedIn_ = 0;
    uint64_t migratedOut_ = 0;
    // Totals folded in from destroyed (or hibernated) sessions.
    uint64_t retiredUops_ = 0;
    uint64_t retiredInsts_ = 0;
    uint64_t retiredEvents_ = 0;
    uint64_t retiredJobs_ = 0;
    uint64_t retiredPushed_ = 0;
    uint64_t retiredDropped_ = 0;
};

/** The stock name → Program mapping ("demo" + the six synthetic
 *  SPEC2000 kernels). */
bool defaultProgramFactory(const std::string &name, Program &out);

} // namespace dise::server

#endif // DISE_SERVER_SESSION_MANAGER_HH
