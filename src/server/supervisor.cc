#include "server/supervisor.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/metrics.hh"

namespace dise::server {

namespace {

bool
sendAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w <= 0)
            return false;
        off += static_cast<size_t>(w);
    }
    return true;
}

int
connectLoopback(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Mean of the scheduler queue-wait family in a stats snapshot. */
uint64_t
queueWaitMeanUs(const ServerStats &s)
{
    for (const HistogramSnapshot &h : s.hists)
        if (h.name == "dise_sched_queue_wait_us")
            return static_cast<uint64_t>(obs::histogramMean(h));
    return 0;
}

/** Line channel shared by the proxy thread and leg event handlers. */
struct ProxyOut
{
    int fd = -1;
    std::mutex mu;

    bool
    sendLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lk(mu);
        std::string data = line + "\n";
        return sendAll(fd, data.data(), data.size());
    }
};

} // namespace

ShardSupervisor::ShardSupervisor(ShardSupervisorOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.shards)
        opts_.shards = 1;
}

ShardSupervisor::~ShardSupervisor()
{
    stop();
}

bool
ShardSupervisor::start()
{
    // Fork the fleet before the listener: by the time a client can
    // connect, every shard answers (and has recovered its store).
    specs_.resize(opts_.shards);
    for (unsigned k = 0; k < opts_.shards; ++k) {
        ShardProcessSpec &spec = specs_[k];
        spec.index = k;
        spec.total = opts_.shards;
        spec.server = opts_.worker;
        spec.factory = opts_.factory;
        if (!spec.server.storeDir.empty())
            spec.server.storeDir =
                opts_.worker.storeDir + "/shard-" + std::to_string(k);
        shards_.push_back(std::make_unique<Shard>());
        std::string err;
        if (!spawnShardProcess(spec, shards_.back()->proc, &err)) {
            std::fprintf(stderr, "supervisor: %s\n", err.c_str());
            stop();
            return false;
        }
        shards_.back()->alive.store(true);
        if (opts_.verbose)
            std::fprintf(stderr,
                         "supervisor: shard %u pid %d port %u\n", k,
                         static_cast<int>(shards_.back()->proc.pid),
                         shards_.back()->proc.port);
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        stop();
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 16) < 0) {
        stop();
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    acceptThread_ =
        std::thread([this, fd = listenFd_] { acceptLoop(fd); });
    monitorThread_ = std::thread([this] { monitorLoop(); });
    if (opts_.balanceIntervalMs)
        balanceThread_ = std::thread([this] { balanceLoop(); });
    return true;
}

void
ShardSupervisor::stop()
{
    if (stopping_.exchange(true)) {
        // Idempotent, but a second caller must still not return while
        // the first is mid-teardown; the joins below are the barrier.
        return;
    }
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (balanceThread_.joinable())
        balanceThread_.join();
    // Monitor goes before reaping: it also waitpids.
    if (monitorThread_.joinable())
        monitorThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (Conn &c : conns_)
            if (c.fd >= 0)
                ::shutdown(c.fd, SHUT_RDWR);
    }
    for (Conn &c : conns_)
        if (c.th.joinable())
            c.th.join();
    conns_.clear();
    for (auto &sh : shards_) {
        {
            std::lock_guard<std::mutex> lk(sh->ctlMu);
            sh->ctl.reset();
        }
        shutdownShardProcess(sh->proc);
        sh->alive.store(false);
    }
    shards_.clear();
}

pid_t
ShardSupervisor::shardPid(unsigned k) const
{
    return k < shards_.size() ? shards_[k]->proc.pid : -1;
}

uint16_t
ShardSupervisor::shardPort(unsigned k) const
{
    return k < shards_.size() ? shards_[k]->proc.port : 0;
}

uint64_t
ShardSupervisor::shardRestarts(unsigned k) const
{
    return k < shards_.size()
               ? shards_[k]->restarts.load(std::memory_order_relaxed)
               : 0;
}

bool
ShardSupervisor::killShard(unsigned k)
{
    if (k >= shards_.size() || shards_[k]->proc.pid < 0)
        return false;
    return ::kill(shards_[k]->proc.pid, SIGKILL) == 0;
}

bool
ShardSupervisor::waitForRespawn(unsigned k, unsigned timeoutMs)
{
    if (k >= shards_.size())
        return false;
    for (unsigned waited = 0; waited < timeoutMs; waited += 50) {
        if (shards_[k]->alive.load()) {
            // Probe with a server-level verb: `ping` is session
            // dispatch and errors until a session is selected.
            Request probe;
            probe.kind = RequestKind::ServerStats;
            Response resp;
            if (ctlCall(k, probe, resp) && resp.ok())
                return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

// ------------------------------------------------------------- control

bool
ShardSupervisor::ctlCall(unsigned k, const Request &req, Response &resp,
                         std::string *err)
{
    if (k >= shards_.size()) {
        if (err)
            *err = "no such shard";
        return false;
    }
    Shard &sh = *shards_[k];
    std::lock_guard<std::mutex> lk(sh.ctlMu);
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (!sh.ctl || !sh.ctl->connected()) {
            auto c = std::make_unique<WireClient>();
            std::string cerr;
            if (!c->connectTo(sh.proc.port, &cerr)) {
                if (err)
                    *err = "shard " + std::to_string(k) +
                           " unreachable: " + cerr;
                continue; // the monitor may have respawned it
            }
            sh.ctl = std::move(c);
        }
        std::string cerr;
        if (sh.ctl->call(req, resp, &cerr))
            return true;
        sh.ctl.reset();
        if (err)
            *err = "shard " + std::to_string(k) + ": " + cerr;
    }
    return false;
}

bool
ShardSupervisor::locate(uint64_t id, unsigned &shard, std::string *err)
{
    {
        std::lock_guard<std::mutex> lk(routeMu_);
        auto it = route_.find(id);
        if (it != route_.end()) {
            shard = it->second;
            return true;
        }
    }
    // Probe: after a crash or a cold supervisor the routing table is
    // incomplete; session-list per shard rebuilds it.
    Request list;
    list.kind = RequestKind::SessionList;
    bool found = false;
    for (unsigned k = 0; k < shards_.size(); ++k) {
        Response resp;
        if (!ctlCall(k, list, resp) || !resp.ok())
            continue;
        std::lock_guard<std::mutex> lk(routeMu_);
        for (uint64_t got : resp.regs) {
            route_[got] = k;
            if (got == id) {
                shard = k;
                found = true;
            }
        }
    }
    if (!found && err)
        *err = "no such session " + std::to_string(id) +
               " on any shard";
    return found;
}

unsigned
ShardSupervisor::leastLoadedShard(int excluding)
{
    unsigned best = 0;
    uint64_t bestLoad = ~0ull;
    bool any = false;
    Request req;
    req.kind = RequestKind::ServerStats;
    for (unsigned k = 0; k < shards_.size(); ++k) {
        if (static_cast<int>(k) == excluding)
            continue;
        if (!shards_[k]->alive.load())
            continue;
        Response resp;
        if (!ctlCall(k, req, resp) || !resp.ok())
            continue;
        uint64_t load =
            resp.server.activeSessions + resp.server.hibernated;
        if (!any || load < bestLoad) {
            any = true;
            best = k;
            bestLoad = load;
        }
    }
    if (!any)
        // Last resort: round-robin over the fleet.
        best = static_cast<unsigned>(
                   connectionsServed_.load(std::memory_order_relaxed)) %
               static_cast<unsigned>(std::max<size_t>(1, shards_.size()));
    return best;
}

// ----------------------------------------------------------- migration

bool
ShardSupervisor::migrate(uint64_t id, int target, std::string *err)
{
    unsigned src = 0;
    if (!locate(id, src, err))
        return false;
    unsigned dst;
    if (target >= 0) {
        if (static_cast<size_t>(target) >= shards_.size()) {
            if (err)
                *err = "no such shard " + std::to_string(target);
            return false;
        }
        dst = static_cast<unsigned>(target);
    } else {
        dst = leastLoadedShard(static_cast<int>(src));
    }
    if (dst == src)
        return true; // already there

    // Export first. Any failure here leaves the session exactly where
    // it was.
    if (opts_.faults &&
        opts_.faults->shouldFail(
            persist::FaultInjector::Site::MigrateExport)) {
        if (err)
            *err = "injected fault: migrate-export";
        return false;
    }
    Request ex;
    ex.kind = RequestKind::SessionExport;
    ex.session = id;
    Response exResp;
    if (!ctlCall(src, ex, exResp, err))
        return false;
    if (!exResp.ok()) {
        if (err)
            *err = exResp.error;
        return false;
    }

    // Adopt on the target. From here the session exists only as the
    // image in our hands: on ANY failure we re-adopt it back onto the
    // source so the outcome is old-or-new, never neither.
    std::string adoptErr;
    bool adopted = false;
    if (opts_.faults &&
        opts_.faults->shouldFail(
            persist::FaultInjector::Site::MigrateAdopt)) {
        adoptErr = "injected fault: migrate-adopt";
    } else {
        Request ad;
        ad.kind = RequestKind::SessionAdopt;
        ad.data = exResp.text;
        Response adResp;
        if (!ctlCall(dst, ad, adResp, &adoptErr)) {
            // transport error already in adoptErr
        } else if (!adResp.ok()) {
            adoptErr = adResp.error;
        } else {
            adopted = true;
        }
    }
    if (!adopted) {
        Request back;
        back.kind = RequestKind::SessionAdopt;
        back.data = exResp.text;
        Response backResp;
        std::string backErr;
        if (ctlCall(src, back, backResp, &backErr) && backResp.ok()) {
            if (err)
                *err = adoptErr + " (session restored on shard " +
                       std::to_string(src) + ")";
        } else if (err) {
            *err = adoptErr + "; restore on shard " +
                   std::to_string(src) + " also failed: " +
                   (backErr.empty() ? backResp.error : backErr);
        }
        return false;
    }

    {
        std::lock_guard<std::mutex> lk(routeMu_);
        route_[id] = dst;
    }
    migrations_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.verbose)
        std::fprintf(stderr,
                     "supervisor: migrated session %llu: shard %u -> "
                     "%u (digest %016llx)\n",
                     static_cast<unsigned long long>(id), src, dst,
                     static_cast<unsigned long long>(exResp.value));
    return true;
}

bool
ShardSupervisor::balanceOnce(std::string *err)
{
    std::vector<ShardStatsRow> rows = shardStats();
    if (rows.size() < 2)
        return false;
    const ShardStatsRow *hot = nullptr;
    const ShardStatsRow *cold = nullptr;
    for (const ShardStatsRow &r : rows) {
        if (!hot || r.queueWaitMeanUs > hot->queueWaitMeanUs)
            hot = &r;
        if (!cold || r.queueWaitMeanUs < cold->queueWaitMeanUs)
            cold = &r;
    }
    if (!hot || !cold || hot->index == cold->index)
        return false;
    if (hot->queueWaitMeanUs < opts_.balanceMinQueueWaitUs)
        return false; // fleet is idle; don't shuffle over noise
    if (cold->queueWaitMeanUs &&
        static_cast<double>(hot->queueWaitMeanUs) <
            opts_.balanceRatio *
                static_cast<double>(cold->queueWaitMeanUs))
        return false;
    if (hot->sessions + hot->hibernated < 2)
        return false; // nothing worth moving

    // Move the first idle session that will go; busy ones refuse the
    // export and we try the next.
    Request list;
    list.kind = RequestKind::SessionList;
    Response resp;
    if (!ctlCall(static_cast<unsigned>(hot->index), list, resp) ||
        !resp.ok())
        return false;
    unsigned tries = 0;
    for (uint64_t id : resp.regs) {
        if (++tries > 4)
            break;
        std::string merr;
        if (migrate(id, static_cast<int>(cold->index), &merr))
            return true;
        if (err)
            *err = merr;
    }
    return false;
}

// --------------------------------------------------------------- stats

std::vector<ShardStatsRow>
ShardSupervisor::shardStats()
{
    std::vector<ShardStatsRow> rows;
    Request req;
    req.kind = RequestKind::ServerStats;
    for (unsigned k = 0; k < shards_.size(); ++k) {
        ShardStatsRow row;
        row.index = k;
        row.pid = shards_[k]->proc.pid > 0
                      ? static_cast<uint64_t>(shards_[k]->proc.pid)
                      : 0;
        row.restarts = shards_[k]->restarts.load();
        Response resp;
        if (ctlCall(k, req, resp) && resp.ok()) {
            row.sessions = resp.server.activeSessions;
            row.hibernated = resp.server.hibernated;
            row.jobs = resp.server.jobs;
            row.totalUops = resp.server.totalUops;
            row.appInsts = resp.server.totalAppInsts;
            row.queueWaitMeanUs = queueWaitMeanUs(resp.server);
            row.migratedIn = resp.server.migratedIn;
            row.migratedOut = resp.server.migratedOut;
        }
        rows.push_back(row);
    }
    return rows;
}

ServerStats
ShardSupervisor::fleetStats()
{
    ServerStats fleet;
    Request req;
    req.kind = RequestKind::ServerStats;
    for (unsigned k = 0; k < shards_.size(); ++k) {
        Response resp;
        if (!ctlCall(k, req, resp) || !resp.ok())
            continue;
        const ServerStats &s = resp.server;
        fleet.activeSessions += s.activeSessions;
        fleet.peakSessions += s.peakSessions;
        fleet.created += s.created;
        fleet.destroyed += s.destroyed;
        fleet.rejected += s.rejected;
        fleet.maxSessions += s.maxSessions;
        fleet.workers += s.workers;
        fleet.slices += s.slices;
        fleet.jobs += s.jobs;
        fleet.totalUops += s.totalUops;
        fleet.totalAppInsts += s.totalAppInsts;
        fleet.totalEvents += s.totalEvents;
        fleet.eventsPushed += s.eventsPushed;
        fleet.subscribers += s.subscribers;
        fleet.dropped += s.dropped;
        fleet.hibernated += s.hibernated;
        fleet.evictions += s.evictions;
        fleet.resurrections += s.resurrections;
        fleet.quarantined += s.quarantined;
        fleet.faultsInjected += s.faultsInjected;
        fleet.migratedIn += s.migratedIn;
        fleet.migratedOut += s.migratedOut;
        obs::mergeHistogramSnapshots(fleet.hists, s.hists);
        for (const tools::ToolStatsRow &row : s.tools) {
            tools::ToolStatsRow *agg = nullptr;
            for (tools::ToolStatsRow &t : fleet.tools)
                if (t.name == row.name)
                    agg = &t;
            if (!agg) {
                fleet.tools.push_back(row);
            } else {
                agg->uopsSeen += row.uopsSeen;
                agg->checks += row.checks;
                agg->suppressed += row.suppressed;
                agg->findings += row.findings;
            }
        }
    }
    if (opts_.faults)
        fleet.faultsInjected = opts_.faults->injected();
    return fleet;
}

// ------------------------------------------------------------- routing

void
ShardSupervisor::acceptLoop(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        connectionsServed_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(connMu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->done.load(std::memory_order_acquire)) {
                it->th.join();
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
        conns_.emplace_back();
        auto self = std::prev(conns_.end());
        self->fd = fd;
        self->th = std::thread([this, fd, self] {
            serveConnection(fd);
            {
                std::lock_guard<std::mutex> done(connMu_);
                self->fd = -1;
                ::close(fd);
            }
            self->done.store(true, std::memory_order_release);
        });
    }
}

void
ShardSupervisor::serveConnection(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    char first = 0;
    ssize_t n = ::recv(fd, &first, 1, MSG_PEEK);
    if (n <= 0)
        return;
    if (first == '+' || first == '-' || first == '$' || first == '\x03')
        serveRspProxy(fd, first);
    else
        serveWireProxy(fd);
}

void
ShardSupervisor::serveRspProxy(int fd, char)
{
    // gdb's one-target model: place the connection once, then pump
    // bytes blindly. The shard does all the RSP work.
    unsigned k = leastLoadedShard();
    int up = connectLoopback(shardPort(k));
    if (up < 0)
        return;
    char buf[4096];
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {up, POLLIN, 0};
    for (;;) {
        fds[0].revents = fds[1].revents = 0;
        if (::poll(fds, 2, 500) < 0)
            break;
        if (stopping_.load())
            break;
        bool dead = false;
        for (int i = 0; i < 2; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            ssize_t got = ::read(fds[i].fd, buf, sizeof buf);
            if (got <= 0) {
                dead = true;
                break;
            }
            if (!sendAll(i == 0 ? up : fd, buf,
                         static_cast<size_t>(got))) {
                dead = true;
                break;
            }
        }
        if (dead)
            break;
    }
    ::close(up);
}

void
ShardSupervisor::serveWireProxy(int fd)
{
    auto out = std::make_shared<ProxyOut>();
    out->fd = fd;

    // One downstream leg per shard this client touches; pushed events
    // from any leg forward straight to the client.
    std::map<unsigned, std::unique_ptr<WireClient>> legs;
    int cur = -1; // shard holding this connection's selection

    auto leg = [&](unsigned k) -> WireClient * {
        auto it = legs.find(k);
        if (it != legs.end() && it->second->connected())
            return it->second.get();
        legs.erase(k);
        auto c = std::make_unique<WireClient>();
        c->setEventHandler(
            [out](const std::string &line) { out->sendLine(line); });
        if (!c->connectTo(shardPort(k)))
            return nullptr;
        WireClient *raw = c.get();
        legs[k] = std::move(c);
        return raw;
    };
    auto deselect = [&](int k) {
        if (k < 0)
            return;
        auto it = legs.find(static_cast<unsigned>(k));
        if (it == legs.end() || !it->second->connected())
            return;
        Request d;
        d.kind = RequestKind::SessionSelect;
        d.session = 0;
        Response resp;
        it->second->call(d, resp);
    };
    auto sendResp = [&](const Response &resp) {
        return out->sendLine(encodeResponse(resp));
    };
    auto sendErr = [&](const Request &req, const std::string &msg) {
        Response resp;
        resp.seq = req.seq;
        resp.inReplyTo = req.kind;
        resp.status = ResponseStatus::Error;
        resp.error = msg;
        return sendResp(resp);
    };
    // Forward the client's raw line to shard k; relay the raw reply.
    // Returns the decoded reply through *decoded when asked.
    auto forward = [&](const Request &req, unsigned k,
                       const std::string &line,
                       Response *decoded = nullptr) -> bool {
        WireClient *c = leg(k);
        std::string reply, ferr;
        if (!c || !c->roundTripRaw(line, reply, &ferr)) {
            legs.erase(k);
            return sendErr(req, "shard " + std::to_string(k) +
                                    " unavailable" +
                                    (ferr.empty() ? "" : ": " + ferr));
        }
        if (decoded)
            decodeResponse(reply, *decoded);
        return out->sendLine(reply);
    };

    std::string buf;
    char chunk[4096];
    bool dead = false;
    while (!dead) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<size_t>(n));
        if (buf.size() > (8u << 20))
            break;
        size_t nl;
        while (!dead && (nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (opts_.verbose)
                std::fprintf(stderr, "supervisor <- %s\n",
                             line.c_str());

            Request req;
            std::string derr;
            if (!decodeRequest(line, req, &derr)) {
                // Let a shard produce the canonical decode error.
                unsigned k =
                    cur >= 0 ? static_cast<unsigned>(cur) : 0u;
                dead = !forward(req, k, line);
                continue;
            }

            switch (req.kind) {
              case RequestKind::SessionCreate: {
                unsigned k =
                    (req.shard >= 0 &&
                     static_cast<size_t>(req.shard) < shards_.size())
                        ? static_cast<unsigned>(req.shard)
                        : leastLoadedShard();
                if (cur >= 0 && cur != static_cast<int>(k))
                    deselect(cur);
                Response resp;
                dead = !forward(req, k, line, &resp);
                if (resp.ok()) {
                    std::lock_guard<std::mutex> lk(routeMu_);
                    route_[resp.value] = k;
                    cur = static_cast<int>(k);
                }
                break;
              }
              case RequestKind::SessionSelect: {
                if (!req.session) {
                    if (cur >= 0)
                        dead = !forward(
                            req, static_cast<unsigned>(cur), line);
                    else {
                        Response resp;
                        resp.seq = req.seq;
                        resp.inReplyTo = req.kind;
                        dead = !sendResp(resp);
                    }
                    break;
                }
                unsigned k = 0;
                std::string lerr;
                if (!locate(req.session, k, &lerr)) {
                    dead = !sendErr(req, lerr);
                    break;
                }
                if (cur >= 0 && cur != static_cast<int>(k))
                    deselect(cur);
                Response resp;
                dead = !forward(req, k, line, &resp);
                if (resp.ok())
                    cur = static_cast<int>(k);
                break;
              }
              case RequestKind::SessionDestroy:
              case RequestKind::SessionHibernate:
              case RequestKind::SessionPersist:
              case RequestKind::SessionExport:
              case RequestKind::ToolEnable:
              case RequestKind::ToolDisable:
              case RequestKind::ToolList:
              case RequestKind::ToolReport: {
                // Session-addressed (or selection-relative when
                // session=0 — then the current leg already holds it).
                if (!req.session) {
                    if (cur < 0) {
                        dead = !sendErr(req, "no session selected");
                        break;
                    }
                    dead =
                        !forward(req, static_cast<unsigned>(cur), line);
                    break;
                }
                unsigned k = 0;
                std::string lerr;
                if (!locate(req.session, k, &lerr)) {
                    dead = !sendErr(req, lerr);
                    break;
                }
                bool selects = req.kind == RequestKind::ToolEnable ||
                               req.kind == RequestKind::ToolDisable ||
                               req.kind == RequestKind::ToolList ||
                               req.kind == RequestKind::ToolReport;
                if (selects && cur >= 0 && cur != static_cast<int>(k))
                    deselect(cur);
                Response resp;
                dead = !forward(req, k, line, &resp);
                if (resp.ok()) {
                    if (selects)
                        cur = static_cast<int>(k);
                    if (req.kind == RequestKind::SessionDestroy ||
                        req.kind == RequestKind::SessionExport) {
                        std::lock_guard<std::mutex> lk(routeMu_);
                        route_.erase(req.session);
                    }
                }
                break;
              }
              case RequestKind::SessionAdopt: {
                unsigned k =
                    (req.shard >= 0 &&
                     static_cast<size_t>(req.shard) < shards_.size())
                        ? static_cast<unsigned>(req.shard)
                        : leastLoadedShard();
                Response resp;
                dead = !forward(req, k, line, &resp);
                if (resp.ok()) {
                    std::lock_guard<std::mutex> lk(routeMu_);
                    route_[resp.value] = k;
                }
                break;
              }
              case RequestKind::SessionMigrate: {
                if (!req.session) {
                    dead = !sendErr(req, "session-migrate needs "
                                         "session=<id>");
                    break;
                }
                std::string merr;
                if (!migrate(req.session,
                             static_cast<int>(req.shard), &merr)) {
                    dead = !sendErr(req, merr);
                    break;
                }
                Response resp;
                resp.seq = req.seq;
                resp.inReplyTo = req.kind;
                resp.value = req.session;
                {
                    std::lock_guard<std::mutex> lk(routeMu_);
                    auto it = route_.find(req.session);
                    if (it != route_.end())
                        resp.index = static_cast<int>(it->second);
                }
                dead = !sendResp(resp);
                break;
              }
              case RequestKind::SessionList: {
                Request list;
                list.kind = RequestKind::SessionList;
                Response merged;
                merged.seq = req.seq;
                merged.inReplyTo = req.kind;
                for (unsigned k = 0; k < shards_.size(); ++k) {
                    Response resp;
                    if (!ctlCall(k, list, resp) || !resp.ok())
                        continue;
                    std::lock_guard<std::mutex> lk(routeMu_);
                    for (uint64_t id : resp.regs) {
                        merged.regs.push_back(id);
                        route_[id] = k;
                    }
                }
                std::sort(merged.regs.begin(), merged.regs.end());
                dead = !sendResp(merged);
                break;
              }
              case RequestKind::ServerStats: {
                Response resp;
                resp.seq = req.seq;
                resp.inReplyTo = req.kind;
                resp.server = fleetStats();
                dead = !sendResp(resp);
                break;
              }
              case RequestKind::ShardStats: {
                Response resp;
                resp.seq = req.seq;
                resp.inReplyTo = req.kind;
                resp.shards = shardStats();
                dead = !sendResp(resp);
                break;
              }
              default: {
                // Selection-relative traffic (exec verbs, peeks,
                // subscribe, trace, metrics, ...) rides the current
                // leg; with no selection yet, shard 0 answers — and
                // produces the canonical "no session selected".
                unsigned k =
                    cur >= 0 ? static_cast<unsigned>(cur) : 0u;
                dead = !forward(req, k, line);
                break;
              }
            }
        }
    }
    // Leg destructors hang up on the shards, which drops their
    // selections and subscriptions exactly like a direct disconnect.
}

// -------------------------------------------------------------- respawn

void
ShardSupervisor::monitorLoop()
{
    while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        for (unsigned k = 0; k < shards_.size(); ++k) {
            Shard &sh = *shards_[k];
            if (sh.proc.pid < 0)
                continue;
            int status = 0;
            pid_t r = ::waitpid(sh.proc.pid, &status, WNOHANG);
            if (r != sh.proc.pid)
                continue;
            // The worker died. Its lifeline fd is now useless.
            sh.alive.store(false);
            if (sh.proc.lifeline >= 0) {
                ::close(sh.proc.lifeline);
                sh.proc.lifeline = -1;
            }
            sh.proc.pid = -1;
            {
                std::lock_guard<std::mutex> lk(sh.ctlMu);
                sh.ctl.reset();
            }
            if (stopping_.load() || !opts_.respawn)
                continue;
            if (opts_.verbose)
                std::fprintf(stderr,
                             "supervisor: shard %u died (status "
                             "0x%x); respawning\n",
                             k, status);
            std::string err;
            ShardProcess fresh;
            if (!spawnShardProcess(specs_[k], fresh, &err)) {
                std::fprintf(stderr,
                             "supervisor: shard %u respawn failed: "
                             "%s\n",
                             k, err.c_str());
                continue;
            }
            sh.proc = fresh;
            sh.restarts.fetch_add(1, std::memory_order_relaxed);
            sh.alive.store(true);
            // Routing entries for this shard stay valid: the
            // replacement recovered the same store slice, so ids
            // resolve to hibernated sessions ready to resurrect.
        }
    }
}

void
ShardSupervisor::balanceLoop()
{
    while (!stopping_.load()) {
        for (unsigned waited = 0;
             waited < opts_.balanceIntervalMs && !stopping_.load();
             waited += 50)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (stopping_.load())
            return;
        balanceOnce();
    }
}

} // namespace dise::server
