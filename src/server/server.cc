#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hex.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "persist/image.hh"
#include "rsp/server.hh"

namespace dise::server {

namespace {

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

/** Per-connection outbound line channel. Responses (connection
 *  thread) and pushed events (scheduler workers) both go through
 *  sendLine(), so lines never interleave mid-write. A send that fails
 *  — hangup, or the SO_SNDTIMEO bound on a subscriber that stopped
 *  reading — reports false and the caller drops the path. */
struct DebugServer::WireOut
{
    int fd = -1;

    bool
    sendLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lk(mu);
        return sendAll(fd, line + "\n");
    }

    /** Best-effort single-attempt send for farewell lines: the peer is
     *  known wedged, so this must neither block on its full socket
     *  buffer nor wait for a writer already stuck in sendLine(). */
    void
    sendLineNoWait(const std::string &line)
    {
        std::unique_lock<std::mutex> lk(mu, std::try_to_lock);
        if (!lk.owns_lock())
            return;
        std::string data = line + "\n";
        (void)::send(fd, data.data(), data.size(),
                     MSG_DONTWAIT | MSG_NOSIGNAL);
    }

  private:
    std::mutex mu;
};

class DebugServer::WireSink : public EventSink
{
  public:
    explicit WireSink(std::shared_ptr<WireOut> out)
        : out_(std::move(out))
    {
    }

    bool
    deliver(const SessionEvent &ev) override
    {
        return out_->sendLine(encodeEvent(ev));
    }

    void
    farewell(const SessionEvent &ev) override
    {
        // One non-blocking attempt: if the peer ever drains its socket
        // again it learns why the stream ended instead of seeing a
        // silent stop.
        out_->sendLineNoWait(encodeEvent(ev));
    }

  private:
    std::shared_ptr<WireOut> out_;
};

struct DebugServer::WireConn
{
    ManagedSessionPtr sel;
    std::shared_ptr<WireOut> out;
    /** Live subscriptions, unregistered when the connection dies. */
    std::vector<std::pair<ManagedSessionPtr, std::shared_ptr<EventSink>>>
        subs;
};

DebugServer::DebugServer(DebugServerOptions opts,
                         SessionManager::ProgramFactory factory)
    : opts_(opts),
      manager_({opts.maxSessions, opts.session, opts.idStart,
                opts.idStride},
               std::move(factory)),
      sched_({opts.slots, opts.sliceInsts, opts.faults})
{
}

DebugServer::~DebugServer()
{
    stop();
}

// ------------------------------------------------------------ lifecycle

bool
DebugServer::start()
{
    // Crash recovery precedes the listener: by the time a client can
    // connect, every valid image from the previous run is re-admitted
    // (as a hibernated session, resurrected on first use) and every
    // corrupt artifact is quarantined with a typed record.
    if (!opts_.storeDir.empty() && !store_) {
        persist::Vfs *vfs = &realVfs_;
        if (opts_.faults) {
            faultyVfs_ = std::make_unique<persist::FaultyVfs>(
                realVfs_, *opts_.faults);
            vfs = faultyVfs_.get();
        }
        store_ =
            std::make_unique<persist::SessionStore>(opts_.storeDir, *vfs);
        persist::StoreResult res = store_->open();
        if (!res.ok) {
            std::fprintf(stderr, "server: store %s unusable: %s: %s\n",
                         opts_.storeDir.c_str(),
                         persist::storeErrName(res.err),
                         res.detail.c_str());
            store_.reset();
            return false;
        }
        if (opts_.verbose) {
            for (const persist::QuarantineRecord &q :
                 store_->quarantined())
                std::fprintf(stderr,
                             "server: quarantined %s: %s: %s\n",
                             q.file.c_str(),
                             persist::storeErrName(q.err),
                             q.detail.c_str());
            std::fprintf(
                stderr, "server: store %s: %zu session(s) recovered\n",
                opts_.storeDir.c_str(), store_->entries().size());
        }
        manager_.adoptStore(store_.get());
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 16) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    // The loop gets its own copy of the fd: stop() clears listenFd_
    // from the owner thread, and sharing the member would race.
    acceptThread_ =
        std::thread([this, fd = listenFd_] { acceptLoop(fd); });
    return true;
}

void
DebugServer::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
}

void
DebugServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (Conn &c : conns_)
            if (c.fd >= 0)
                ::shutdown(c.fd, SHUT_RDWR);
    }
    // Fail any queued/in-flight jobs so connection threads blocked in
    // a synchronous drive() wake up and observe their dead sockets.
    sched_.stop();
    // No new entries can appear (the accept loop is gone); joining
    // outside the lock lets each connection finish its epilogue.
    for (Conn &c : conns_)
        if (c.th.joinable())
            c.th.join();
    conns_.clear();
}

void
DebugServer::acceptLoop(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            // Persistent failures (EMFILE under fd pressure) must not
            // busy-spin a core; back off briefly and retry.
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        connectionsServed_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(connMu_);
        // Reap finished connections so a long-lived daemon does not
        // accumulate one dead (joinable) thread per client. A done
        // entry's thread has already left its epilogue's critical
        // section, so joining under connMu_ cannot deadlock.
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->done.load(std::memory_order_acquire)) {
                it->th.join();
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
        conns_.emplace_back();
        auto self = std::prev(conns_.end());
        self->fd = fd;
        self->th = std::thread([this, fd, self] {
            serveConnection(fd);
            {
                // Retire the fd entry and close in one critical
                // section: closing first would let the OS recycle
                // the number while stop() still sees it and
                // shutdown()s an unrelated descriptor.
                std::lock_guard<std::mutex> done(connMu_);
                self->fd = -1;
                ::close(fd);
            }
            self->done.store(true, std::memory_order_release);
        });
    }
}

// ---------------------------------------------------------- connections

void
DebugServer::serveConnection(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    // Protocol sniff: RSP clients open with an ack, a packet, or an
    // interrupt; the typed wire protocol opens with a verb letter.
    char first = 0;
    ssize_t n = ::recv(fd, &first, 1, MSG_PEEK);
    if (n <= 0)
        return;
    if (first == '+' || first == '-' || first == '$' || first == '\x03')
        serveRsp(fd);
    else
        serveWire(fd);
}

void
DebugServer::serveRsp(int fd)
{
    // gdb's one-target model: this connection gets its own session,
    // admission-capped like any other.
    std::string err;
    ManagedSessionPtr ms =
        manager_.create(opts_.defaultWorkload, opts_.defaultBackend,
                        /*exclusive=*/true, &err);
    if (!ms) {
        if (opts_.verbose)
            std::fprintf(stderr, "server: RSP client rejected: %s\n",
                         err.c_str());
        return; // hang up: gdb reports the dropped connection
    }
    if (opts_.verbose)
        std::fprintf(stderr, "server: RSP client -> session %llu\n",
                     static_cast<unsigned long long>(ms->id));

    // Exclusive sessions are single-client by construction, so only
    // the resume verbs need scheduling. The synchronous hook serves
    // all-stop gdb; the async hook powers non-stop mode (`vCont` OK'd
    // immediately, `%Stop` notification when the job lands) and lets
    // a Ctrl-C interrupt the job between slices.
    auto exec = [this, ms](RequestKind kind, uint64_t count,
                           StopInfo &out, std::string *e) {
        return sched_.drive(*ms, kind, count, out, e);
    };
    auto asyncExec = [this, ms](RequestKind kind, uint64_t count,
                                rsp::RspConnection::AsyncDoneFn done)
        -> std::function<void()> {
        std::string err;
        JobScheduler::TicketPtr t = sched_.driveAsync(
            ms, kind, count,
            [done = std::move(done)](bool ok, bool interrupted,
                                     const StopInfo &stop,
                                     const std::string &e) {
                done(ok, interrupted, stop, e);
            },
            &err);
        if (!t)
            return {};
        return [this, t] { sched_.cancel(t); };
    };
    rsp::RspConnection conn(ms->session, exec, opts_.verbose);
    conn.setAsyncExec(asyncExec);
    conn.setPeekLock([ms] {
        return std::unique_lock<std::mutex>(ms->sliceMu);
    });
    conn.serve(fd);
    manager_.destroy(ms->id);
}

/**
 * A post-attach watch/break change can trigger a rebuild-replay —
 * O(timeline) work — so it runs as a preemptible job: the first slice
 * plans and commits the new machinery, subsequent slices advance the
 * replay by bounded quanta, round-robining with every other session's
 * jobs.
 */
Response
DebugServer::driveSpecJob(ManagedSession &s, const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    resp.inReplyTo = req.kind;
    bool isWatch = req.kind == RequestKind::SetWatch;
    auto idx = std::make_shared<int>(-1);
    auto begun = std::make_shared<bool>(false);
    std::string err;
    bool ok = sched_.run(
        [&s, isWatch, watch = req.watch, brk = req.brk, idx,
         begun](uint64_t slice) {
            if (s.closing.load(std::memory_order_acquire))
                throw std::runtime_error("session destroyed");
            if (!*begun) {
                *begun = true;
                bool done = false;
                *idx = isWatch ? s.session.setWatchBegin(watch, done)
                               : s.session.setBreakBegin(brk, done);
                return *idx < 0 || done;
            }
            return s.session.rebuildStep(slice);
        },
        &err);
    if (!ok) {
        resp.status = ResponseStatus::Error;
        resp.error = err;
        return resp;
    }
    s.jobs.fetch_add(1, std::memory_order_relaxed);
    s.publishProgress();
    s.pushEvents();
    if (*idx < 0) {
        resp.status = ResponseStatus::Unsupported;
        // The session records exactly why it refused (which journal
        // entry blocks the rebuild, or which capability is missing).
        resp.error = !s.session.lastRefusal().empty()
                         ? s.session.lastRefusal()
                         : "the backend cannot implement the enlarged "
                           "set, or the target advanced through a "
                           "non-replayable batch run";
        return resp;
    }
    resp.index = *idx;
    return resp;
}

/**
 * Interval-parallel replay as sibling jobs: one preemptible job per
 * scheduler worker, each repeatedly claiming checkpoint ranges from a
 * shared work-stealing pool (share-nothing replicas, read-only
 * against the live session), then stitched deterministically by
 * digest. An idle job splits the largest in-flight range, so every
 * scheduler worker stays busy regardless of the seed cut.
 */
Response
DebugServer::driveReplayVerify(ManagedSession &s, const Request &req)
{
    Response resp;
    resp.seq = req.seq;
    resp.inReplyTo = req.kind;
    auto errorOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Error;
        resp.error = msg;
        return resp;
    };

    std::unique_ptr<IntervalReplay> ir;
    try {
        ir = s.session.beginIntervalReplay();
    } catch (const std::exception &e) {
        return errorOut(e.what());
    }
    if (!ir)
        return errorOut("no replayable timeline (attach and run "
                        "first, and batch runs cannot be "
                        "reconstructed)");

    struct PoolJob
    {
        std::unique_ptr<IntervalReplay::Worker> w;
        bool prepared = false;
    };
    std::shared_ptr<IntervalReplay::Pool> pool = ir->makePool();
    size_t n = std::max<size_t>(
        1, std::min<size_t>(sched_.workers(), ir->intervalCount()));
    std::vector<JobScheduler::TicketPtr> tickets;
    for (size_t i = 0; i < n; ++i) {
        auto pj = std::make_shared<PoolJob>();
        tickets.push_back(sched_.submit([pj, pool, &s](uint64_t slice) {
            if (s.closing.load(std::memory_order_acquire))
                throw std::runtime_error("session destroyed");
            if (!pj->w) {
                pj->w = pool->claim();
                if (!pj->w)
                    return true; // pool drained; job done
                pj->prepared = false;
                return false;
            }
            if (!pj->prepared) {
                // Materializing the start state is its own slice.
                pj->w->prepare();
                pj->prepared = true;
                return false;
            }
            // The scheduler's grain is app-instructions; replay
            // slices meter µops (≈4 per instrumented instruction).
            if (!pj->w->step(slice * 4))
                return false;
            pool->complete(*pj->w);
            pj->w.reset();
            return false; // claim the next range next slice
        }));
    }
    bool ok = true;
    std::string err;
    for (const JobScheduler::TicketPtr &t : tickets) {
        std::string e;
        if (!sched_.wait(t, &e)) {
            ok = false;
            if (err.empty())
                err = e;
        }
    }
    s.jobs.fetch_add(tickets.size(), std::memory_order_relaxed);
    if (!ok)
        return errorOut(err);
    IntervalReplay::Report rep = ir->stitch(pool->take());
    if (!rep.ok)
        return errorOut(rep.error.empty()
                            ? "replay verification failed"
                            : rep.error);
    resp.value = rep.finalDigest;
    resp.index = static_cast<int64_t>(pool->steals());
    for (const IntervalReplay::Interval &iv : rep.intervals)
        resp.regs.push_back(iv.endDigest);
    return resp;
}

Response
DebugServer::handleWire(const Request &req, WireConn &conn)
{
    ManagedSessionPtr &sel = conn.sel;
    Response resp;
    resp.seq = req.seq;
    resp.inReplyTo = req.kind;
    auto errorOut = [&](const std::string &msg) {
        resp.status = ResponseStatus::Error;
        resp.error = msg;
        return resp;
    };

    switch (req.kind) {
      case RequestKind::SessionCreate: {
        std::string err;
        ManagedSessionPtr ms = manager_.create(
            req.name, req.backend, /*exclusive=*/false, &err);
        if (!ms)
            return errorOut(err);
        sel = ms; // creating selects
        manager_.touch(*ms);
        resp.value = ms->id;
        return resp;
      }
      case RequestKind::SessionSelect: {
        // session=0 deselects: the connection drops its reference so
        // the session counts idle again (migration/hibernate need
        // this without hanging up the control connection).
        if (!req.session) {
            sel.reset();
            return resp;
        }
        // find() transparently resurrects a hibernated id; a typed
        // resurrection/quarantine error surfaces to the client.
        std::string err;
        ManagedSessionPtr ms =
            manager_.find(req.session, /*forSelect=*/true, &err);
        if (!ms)
            return errorOut("session " + std::to_string(req.session) +
                            ": " + err);
        sel = ms;
        manager_.touch(*ms);
        resp.value = ms->id;
        return resp;
      }
      case RequestKind::SessionDestroy:
        if (sel && sel->id == req.session)
            sel.reset();
        if (!manager_.destroy(req.session))
            return errorOut("no such session " +
                            std::to_string(req.session));
        return resp;
      case RequestKind::SessionList:
        resp.regs = manager_.ids();
        return resp;
      case RequestKind::ServerStats:
        resp.server = stats();
        return resp;
      case RequestKind::Subscribe: {
        if (!sel)
            return errorOut("no session selected");
        for (const auto &sub : conn.subs)
            if (sub.first == sel)
                return resp; // idempotent
        auto sink = std::make_shared<WireSink>(conn.out);
        sel->addSink(sink);
        conn.subs.emplace_back(sel, sink);
        // Flush the backlog so the subscriber starts from a known
        // point; everything later arrives at slice/verb boundaries.
        {
            std::lock_guard<std::mutex> lk(sel->mu);
            sel->pushEvents();
        }
        return resp;
      }
      case RequestKind::Unsubscribe: {
        if (!sel)
            return errorOut("no session selected");
        for (auto it = conn.subs.begin(); it != conn.subs.end();) {
            if (it->first == sel) {
                it->first->removeSink(it->second);
                it = conn.subs.erase(it);
            } else {
                ++it;
            }
        }
        return resp;
      }
      case RequestKind::SessionHibernate: {
        uint64_t id = req.session ? req.session : (sel ? sel->id : 0);
        if (!id)
            return errorOut("no session selected");
        // Our own selection reference would count the session busy;
        // hibernating it implies deselecting it.
        bool wasSelected = sel && sel->id == id;
        if (wasSelected)
            sel.reset();
        std::string err;
        if (!manager_.hibernate(id, &err)) {
            if (wasSelected)
                sel = manager_.find(id); // restore the selection
            return errorOut(err);
        }
        resp.value = id;
        return resp;
      }
      case RequestKind::SessionPersist: {
        uint64_t id = req.session ? req.session : (sel ? sel->id : 0);
        if (!id)
            return errorOut("no session selected");
        std::string err;
        uint64_t digest = 0;
        if (!manager_.persist(id, &err, &digest))
            return errorOut(err);
        resp.value = digest;
        return resp;
      }
      case RequestKind::SessionExport: {
        // Migration source half: extract the session as a portable
        // image (hex in text=) and forget it. The digest rides in
        // value= so the adopting shard's replay can be cross-checked
        // end to end.
        uint64_t id = req.session ? req.session : (sel ? sel->id : 0);
        if (!id)
            return errorOut("no session selected");
        if (opts_.faults &&
            opts_.faults->shouldFail(
                persist::FaultInjector::Site::MigrateExport))
            return errorOut("injected fault: migrate-export");
        // Our own selection reference would count the session busy.
        bool wasSelected = sel && sel->id == id;
        if (wasSelected)
            sel.reset();
        persist::SessionImage img;
        std::string err;
        if (!manager_.extract(id, img, &err)) {
            if (wasSelected)
                sel = manager_.find(id);
            return errorOut(err);
        }
        resp.value = img.digest;
        resp.text = bytesToHex(persist::encodeImage(img));
        return resp;
      }
      case RequestKind::SessionAdopt: {
        // Migration target half: decode, rebuild, and digest-verified
        // replay the image into this server's table.
        if (opts_.faults &&
            opts_.faults->shouldFail(
                persist::FaultInjector::Site::MigrateAdopt))
            return errorOut("injected fault: migrate-adopt");
        std::vector<uint8_t> bytes;
        if (!hexToBytes(req.data, bytes))
            return errorOut("bad image encoding (expected hex)");
        persist::SessionImage img;
        std::string detail;
        persist::ImageErr ie = persist::decodeImage(bytes, img, &detail);
        if (ie != persist::ImageErr::None)
            return errorOut(std::string("bad image: ") +
                            persist::imageErrName(ie) +
                            (detail.empty() ? "" : ": " + detail));
        std::string err;
        ManagedSessionPtr ms = manager_.adopt(img, &err);
        if (!ms)
            return errorOut(err);
        resp.value = ms->id;
        return resp;
      }
      case RequestKind::SessionMigrate:
      case RequestKind::ShardStats:
        return errorOut(
            "this server is not sharded (shard verbs are handled by "
            "the shard supervisor)");
      case RequestKind::StoreStats: {
        if (!store_)
            return errorOut(
                "the server has no session store (--store-dir)");
        persist::StoreCounters c = store_->counters();
        resp.store.images = c.images;
        resp.store.bytes = c.bytes;
        resp.store.puts = c.puts;
        resp.store.loads = c.loads;
        resp.store.erases = c.erases;
        resp.store.quarantined = c.quarantined;
        resp.store.orphansRemoved = c.orphansRemoved;
        return resp;
      }
      case RequestKind::TraceStart: {
        // count = ring KiB per recording thread (0/1 = default).
        uint64_t kb = req.count > 1 ? req.count : 0;
        obs::Tracer::instance().arm(static_cast<size_t>(kb) * 1024);
        return resp;
      }
      case RequestKind::TraceStop:
        obs::Tracer::instance().disarm();
        resp.value = obs::Tracer::instance().recordCount();
        return resp;
      case RequestKind::TraceDump: {
        obs::Tracer &tr = obs::Tracer::instance();
        if (tr.armed())
            return errorOut("tracer is armed (trace-stop first)");
        std::lock_guard<std::mutex> lk(traceMu_);
        if (traceJsonGen_ != tr.generation()) {
            traceJson_ = tr.dumpJson();
            traceJsonGen_ = tr.generation();
        }
        // Chunked: value= is the byte offset, count= the max chunk
        // (clamped to keep any one wire line bounded); the response
        // carries the chunk in text and the total size in value.
        constexpr uint64_t kMaxChunk = 256 * 1024;
        uint64_t chunk = req.count ? std::min(req.count, kMaxChunk)
                                   : 48 * 1024;
        resp.value = traceJson_.size();
        if (req.value < traceJson_.size())
            resp.text = traceJson_.substr(
                static_cast<size_t>(req.value),
                static_cast<size_t>(chunk));
        return resp;
      }
      case RequestKind::Metrics:
        resp.text = obs::renderPrometheus(obs::metrics().snapshotAll());
        return resp;
      default:
        break;
    }

    // Tool verbs may address a session explicitly (session=); the id
    // resolves through the same path as session-select, so a
    // tool-enable aimed at a hibernated session transparently
    // resurrects it.
    if (req.session &&
        (req.kind == RequestKind::ToolEnable ||
         req.kind == RequestKind::ToolDisable ||
         req.kind == RequestKind::ToolList ||
         req.kind == RequestKind::ToolReport)) {
        std::string err;
        ManagedSessionPtr ms =
            manager_.find(req.session, /*forSelect=*/true, &err);
        if (!ms)
            return errorOut("session " + std::to_string(req.session) +
                            ": " + err);
        sel = ms;
    }

    if (!sel)
        return errorOut(
            "no session selected (session-create or session-select "
            "first)");
    if (sel->closing.load(std::memory_order_acquire)) {
        sel.reset();
        return errorOut("session destroyed");
    }
    manager_.touch(*sel); // LRU stamp: this session is in active use

    Response out;
    bool dropSelection = false;
    {
        std::lock_guard<std::mutex> lk(sel->mu);
        if (JobScheduler::isExecVerb(req.kind)) {
            // Mirror DebugSession::dispatch's capability gate so
            // remote clients still see "unsupported" for
            // no-experiment cells.
            if (!sel->session.attached() && !sel->session.attach()) {
                resp.status = ResponseStatus::Unsupported;
                resp.error = std::string("the ") +
                             backendName(sel->session.backendKind()) +
                             " backend cannot implement the requested "
                             "watchpoints";
                return resp;
            }
            StopInfo stop;
            std::string err;
            if (!sched_.drive(*sel, req.kind, req.count, stop, &err))
                return errorOut(err);
            resp.hasStop = true;
            resp.stop = stop;
            return resp;
        }
        if ((req.kind == RequestKind::SetWatch ||
             req.kind == RequestKind::SetBreak) &&
            sel->session.attached())
            return driveSpecJob(*sel, req);
        if (req.kind == RequestKind::ReplayVerify)
            return driveReplayVerify(*sel, req);
        out = sel->session.handle(req);
        if (req.kind == RequestKind::Detach) {
            // Wire detach ends the hosted session entirely. Do NOT
            // publish after handle(): the detached session reports
            // zero stats, and destroy() folds the *published*
            // counters into the retired totals ("all sessions ever").
            manager_.destroy(sel->id);
            dropSelection = true;
        } else {
            sel->publishProgress();
            sel->pushEvents();
        }
    }
    // The selection may hold the last reference; it must not die
    // while the lock_guard above still references sel->mu.
    if (dropSelection)
        sel.reset();
    return out;
}

void
DebugServer::serveWire(int fd)
{
    // A subscriber that stops reading must not wedge the pushing job
    // forever: TCP flow control is the backpressure (the job stalls at
    // a slice boundary while the socket buffer is full), and the send
    // timeout is the escape hatch that drops the dead subscription.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    WireConn conn;
    conn.out = std::make_shared<WireOut>();
    conn.out->fd = fd;

    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<size_t>(n));
        // A hostile peer must not grow the buffer without bound. The
        // cap leaves room for a session-adopt payload (a hex-encoded
        // SessionImage of a long-lived session runs to megabytes).
        if (buf.size() > (8u << 20))
            break;
        size_t nl;
        bool dead = false;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (opts_.verbose)
                std::fprintf(stderr, "wire <- %s\n", line.c_str());

            uint64_t t0 = obs::nowNs();
            Request req;
            std::string err;
            Response resp;
            if (!decodeRequest(line, req, &err)) {
                resp.status = ResponseStatus::Error;
                resp.error = "decode: " + err;
                size_t pos = line.find("seq=");
                if (pos != std::string::npos)
                    resp.seq = std::strtoull(line.c_str() + pos + 4,
                                             nullptr, 0);
            } else {
                TRACE_SPAN("server", "server.verb");
                resp = handleWire(req, conn);
            }
            std::string out = encodeResponse(resp);
            if (opts_.verbose)
                std::fprintf(stderr, "wire -> %s\n", out.c_str());
            bool sent = conn.out->sendLine(out);
            obs::metrics().verbLatencyUs.observe(obs::usSince(t0));
            if (!sent) {
                dead = true;
                break;
            }
        }
        if (dead)
            break;
    }
    // Unregister the connection's sinks before the channel dies; a
    // worker mid-deliver holds its own shared_ptr to the channel, so
    // the write path stays valid (and merely fails) during teardown.
    for (const auto &sub : conn.subs)
        sub.first->removeSink(sub.second);
}

ServerStats
DebugServer::stats() const
{
    ServerStats s = manager_.stats();
    s.slices = sched_.slicesRun();
    s.workers = sched_.workers();
    if (opts_.faults)
        s.faultsInjected = opts_.faults->injected();
    s.hists = obs::metrics().snapshotAll();
    return s;
}

} // namespace dise::server
