/**
 * @file
 * Blocking typed-wire TCP client with an event-demuxing reader
 * thread.
 *
 * The typed line protocol is request/response, but a subscribed
 * connection also receives server-initiated `event` lines at any
 * moment. WireClient owns one socket and one reader thread: the
 * reader classifies every inbound line, routing `event` lines to a
 * registered handler and everything else to the caller blocked in
 * roundTrip(). Round trips are serialized under a mutex, so the
 * protocol's in-order reply guarantee is all the matching needed —
 * no sequence bookkeeping on the read side.
 *
 * The supervisor (src/server/supervisor.hh) uses WireClients in two
 * roles: one control client per worker shard (probes, stats,
 * export/adopt during migration), and one per client-connection
 * downstream leg, whose event handler forwards pushes to the real
 * client.
 */

#ifndef DISE_SERVER_WIRE_CLIENT_HH
#define DISE_SERVER_WIRE_CLIENT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "session/protocol.hh"

namespace dise::server {

class WireClient
{
  public:
    /** Called from the reader thread with each raw `event` line. */
    using EventHandler = std::function<void(const std::string &line)>;

    WireClient() = default;
    ~WireClient();

    WireClient(const WireClient &) = delete;
    WireClient &operator=(const WireClient &) = delete;

    /** Install the event handler (before connectTo; not thread-safe
     *  against a live reader). */
    void setEventHandler(EventHandler fn) { onEvent_ = std::move(fn); }

    /** Connect to 127.0.0.1:port and start the reader. */
    bool connectTo(uint16_t port, std::string *err = nullptr);

    bool connected() const { return fd_.load() >= 0; }

    /** Shut the socket down and join the reader thread. */
    void close();

    /** One raw request line out, the matching raw response line back.
     *  Round trips serialize; event lines never surface here. */
    bool roundTripRaw(const std::string &line, std::string &reply,
                      std::string *err = nullptr);

    /** Typed convenience: stamps a fresh seq, encodes, decodes. The
     *  call succeeds even when the response carries status=error —
     *  check resp.ok(); false means the transport itself failed. */
    bool call(Request req, Response &resp, std::string *err = nullptr);

  private:
    void readerLoop();

    std::atomic<int> fd_{-1};
    std::thread reader_;
    EventHandler onEvent_;

    std::mutex callMu_; ///< one round trip in flight at a time

    std::mutex replyMu_;
    std::condition_variable replyCv_;
    std::deque<std::string> replies_;
    bool dead_ = false;

    std::atomic<uint64_t> seq_{1};
};

} // namespace dise::server

#endif // DISE_SERVER_WIRE_CLIENT_HH
