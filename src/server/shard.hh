/**
 * @file
 * Worker shard processes: a DebugServer forked into its own process.
 *
 * Each shard is a full one-process debug server — its own
 * JobScheduler worker pool, SessionManager, and (optionally) a
 * private SessionStore directory — listening on an ephemeral
 * loopback port. The supervisor (src/server/supervisor.hh) owns the
 * public port and routes traffic to shards over local TCP, so a
 * shard is completely unaware it is sharded.
 *
 * The spawn protocol is fork-without-exec with two pipes:
 *
 *  - the *handshake* pipe carries the child's bound port back to the
 *    parent (one decimal line; "0" means startup failed), and
 *  - the *lifeline* pipe is held open by the parent for the shard's
 *    lifetime. The child blocks reading it after startup; EOF —
 *    because the parent closed it deliberately or died — is the
 *    shutdown signal. A shard can therefore never outlive its
 *    supervisor as an orphan holding a port.
 *
 * Session-id minting: shard k of N runs with idStart=k+1, idStride=N
 * so sibling shards mint globally disjoint session ids with no
 * cross-process coordination, and an id maps to its minting shard by
 * residue (until a migration moves it — the supervisor's routing
 * table tracks that).
 */

#ifndef DISE_SERVER_SHARD_HH
#define DISE_SERVER_SHARD_HH

#include <string>

#include <sys/types.h>

#include "server/server.hh"

namespace dise::server {

/** Everything needed to fork one worker shard. */
struct ShardProcessSpec
{
    /** This shard's index (0-based) and the fleet size. */
    unsigned index = 0;
    unsigned total = 1;
    /** Server options template. port is forced to 0 (ephemeral),
     *  idStart/idStride are derived from index/total, and storeDir is
     *  used verbatim — the caller resolves the per-shard directory
     *  (e.g. base/shard-0) before spawning. */
    DebugServerOptions server{};
    /** Workload factory for the child's SessionManager (empty =
     *  built-in demo + synthetic workloads). */
    SessionManager::ProgramFactory factory{};
};

/** A live (or dead, pid-still-unreaped) worker shard process. */
struct ShardProcess
{
    pid_t pid = -1;
    uint16_t port = 0;
    /** Parent's write end of the lifeline pipe (-1 once closed). */
    int lifeline = -1;
};

/**
 * Fork a shard and wait for its port handshake. Returns false (with
 * @p err) when the fork, pipes, or the child's server startup fail;
 * a failed child is reaped before returning.
 */
bool spawnShardProcess(const ShardProcessSpec &spec, ShardProcess &out,
                       std::string *err = nullptr);

/**
 * Graceful stop: close the lifeline (the child's EOF shutdown
 * signal), wait up to @p graceMs for it to exit, then SIGKILL.
 * Always reaps; @p p is cleared.
 */
void shutdownShardProcess(ShardProcess &p, unsigned graceMs = 3000);

} // namespace dise::server

#endif // DISE_SERVER_SHARD_HH
