/**
 * @file
 * The multi-session debug server: one TCP port, many concurrent
 * targets, two protocols.
 *
 * Every accepted connection is sniffed on its first byte:
 *
 *  - GDB-RSP traffic ('+', '-', '$', 0x03) gets a dedicated,
 *    per-connection session (gdb's one-target model) created under
 *    the --max-sessions admission cap and destroyed when the client
 *    detaches — two gdbs against one daemon debug two independent
 *    targets.
 *  - Anything else speaks the typed line protocol
 *    (session/protocol.hh), extended with the session-* verbs:
 *    session-create / session-select / session-destroy bind the
 *    connection to any shared session in the table, session-list
 *    enumerates, and server-stats reports the rolled-up aggregates.
 *
 * Every long-running operation from either protocol — forward resumes,
 * reverse replays, post-attach rebuild-replays, interval-parallel
 * replay workers — runs as a preemptible Job on the JobScheduler,
 * which bounds concurrent simulation and round-robins runnable jobs in
 * µop slices; everything else touches the session directly (under its
 * lock for shared wire sessions — exclusive RSP sessions are
 * single-client by construction).
 *
 * Typed-wire clients may `subscribe` to their selected session: every
 * queued SessionEvent is then pushed as a server-initiated `event`
 * line (ordered by queue seq) at job-slice and verb boundaries, so
 * clients stop polling. RSP clients get the async analogue via
 * non-stop `%Stop` notifications (src/rsp/).
 */

#ifndef DISE_SERVER_SERVER_HH
#define DISE_SERVER_SERVER_HH

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/vfs.hh"
#include "server/job_scheduler.hh"
#include "server/session_manager.hh"

namespace dise::server {

struct DebugServerOptions
{
    /** TCP port on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
    /** Admission cap on concurrent sessions (0 = unlimited). */
    unsigned maxSessions = 8;
    /** Scheduler worker threads (0 = hardware concurrency). */
    unsigned slots = 0;
    /** Application instructions per execution slice. */
    uint64_t sliceInsts = 50000;
    bool verbose = false;
    /** Template for new sessions (checkpoint interval etc.). */
    SessionOptions session{};
    /** Defaults for per-connection RSP sessions. */
    BackendKind defaultBackend = BackendKind::Dise;
    std::string defaultWorkload = "demo";
    /** Session-store directory; empty = no durability (hibernate /
     *  persist verbs report errors, crashes lose sessions). start()
     *  opens the store, quarantines anything corrupt, and re-admits
     *  every valid image as a hibernated session. */
    std::string storeDir;
    /** When set, every store filesystem primitive and every scheduler
     *  slice boundary consults it (chaos testing). Not owned. */
    persist::FaultInjector *faults = nullptr;
    /** Session-id minting lattice: shard worker k of N runs with
     *  idStart=k+1, idStride=N so sibling shards mint disjoint ids
     *  with no coordination (see SessionManagerOptions). */
    uint64_t idStart = 1;
    uint64_t idStride = 1;
};

class DebugServer
{
  public:
    explicit DebugServer(DebugServerOptions opts = {},
                         SessionManager::ProgramFactory factory = {});
    ~DebugServer();

    DebugServer(const DebugServer &) = delete;
    DebugServer &operator=(const DebugServer &) = delete;

    /** Bind + listen on 127.0.0.1 and start accepting in the
     *  background. Returns false on socket errors. */
    bool start();
    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }
    /** Block until stop() (the daemon's foreground wait). */
    void wait();
    /** Close the listener, hang up every client, join all threads. */
    void stop();

    SessionManager &sessions() { return manager_; }
    JobScheduler &scheduler() { return sched_; }
    /** The on-disk store (nullptr without --store-dir). */
    persist::SessionStore *store() { return store_.get(); }
    /** Session rollups + scheduler counters, one snapshot. */
    ServerStats stats() const;
    uint64_t connectionsServed() const
    {
        return connectionsServed_.load(std::memory_order_relaxed);
    }

  private:
    /** Per-connection outbound line channel: responses and pushed
     *  events interleave whole-line-atomically under one mutex. */
    struct WireOut;
    /** EventSink writing `event` lines onto a wire connection. */
    class WireSink;
    /** A wire connection's state: selected session + subscriptions. */
    struct WireConn;

    void acceptLoop(int listenFd);
    void serveConnection(int fd);
    void serveRsp(int fd);
    void serveWire(int fd);
    /** One typed-wire request → one response, with connection-local
     *  session selection. */
    Response handleWire(const Request &req, WireConn &conn);
    Response driveSpecJob(ManagedSession &s, const Request &req);
    Response driveReplayVerify(ManagedSession &s, const Request &req);

    DebugServerOptions opts_;
    SessionManager manager_;
    JobScheduler sched_;

    /** Durable-session machinery (only with a storeDir). The real VFS
     *  is wrapped by a FaultyVfs when a FaultInjector is configured,
     *  so chaos runs exercise the exact production code paths. */
    persist::RealVfs realVfs_;
    std::unique_ptr<persist::FaultyVfs> faultyVfs_;
    std::unique_ptr<persist::SessionStore> store_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> connectionsServed_{0};

    /** One live (or just-finished, awaiting reap) connection. */
    struct Conn
    {
        int fd = -1; ///< -1 once the connection closed it
        std::atomic<bool> done{false};
        std::thread th;
    };

    std::mutex connMu_;
    /** Stable-iterator storage: each connection thread holds an
     *  iterator to its own entry. Finished entries are joined and
     *  erased by the accept loop (and finally by stop()), so a
     *  long-lived daemon does not accumulate dead threads. */
    std::list<Conn> conns_;

    /** trace-dump render cache: chunked fetches re-read one rendered
     *  JSON string instead of re-walking the rings per chunk. The
     *  tracer generation invalidates it across re-arms. */
    std::mutex traceMu_;
    std::string traceJson_;
    uint64_t traceJsonGen_ = ~0ull;
};

} // namespace dise::server

#endif // DISE_SERVER_SERVER_HH
