/**
 * @file
 * The execution scheduler of the multi-session server: every resume
 * verb (cont / stepi / run-to-end / the reverse verbs) is driven as a
 * sequence of bounded µop slices, each admitted through a fair FIFO
 * ticket queue with a fixed number of execution slots.
 *
 * Sessions are share-nothing, so a slice needs no state but its own
 * session's; the queue therefore schedules *threads at slice
 * boundaries* instead of shipping sessions to dedicated workers — the
 * connection thread that owns a session executes its slices itself,
 * keeping the session pinned to one OS thread (no per-slice handoff,
 * no cross-thread cache bouncing), while the slot count bounds how
 * many sessions simulate concurrently and the ticket FIFO round-robins
 * the runnable ones: with S sessions contending for W slots, each
 * session advances one slice per scheduling round.
 *
 * Teardown mid-run is a slice-boundary affair: drive() re-checks the
 * session's closing flag before every slice and aborts with an error
 * instead of touching a destroyed target.
 */

#ifndef DISE_SERVER_RUN_QUEUE_HH
#define DISE_SERVER_RUN_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "server/session_manager.hh"

namespace dise::server {

struct RunQueueOptions
{
    /** Concurrent execution slots; 0 = hardware concurrency. */
    unsigned slots = 0;
    /** Application instructions per slice. */
    uint64_t sliceInsts = 50000;
};

class RunQueue
{
  public:
    explicit RunQueue(RunQueueOptions opts = {});

    /** Is @p kind a resume verb drive() accepts? */
    static bool isExecVerb(RequestKind kind);

    /**
     * Run @p kind to completion on @p s in bounded round-robin
     * slices, blocking the calling thread. The caller must have
     * exclusive use of the session (hold s.mu for shared sessions).
     * Returns false with @p err when the session is destroyed
     * mid-run, the backend cannot attach, or the verb is not a
     * resume verb; @p out holds the final stop otherwise.
     */
    bool drive(ManagedSession &s, RequestKind kind, uint64_t count,
               StopInfo &out, std::string *err = nullptr);

    unsigned slots() const { return slots_; }
    uint64_t sliceInsts() const { return slice_; }
    uint64_t slicesRun() const
    {
        return slices_.load(std::memory_order_relaxed);
    }

  private:
    /** FIFO ticket semaphore: strict arrival-order admission. */
    void acquireSlot();
    void releaseSlot();

    struct SlotToken;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<uint64_t> fifo_;
    uint64_t nextTicket_ = 0;
    unsigned active_ = 0;
    unsigned slots_;
    uint64_t slice_;
    std::atomic<uint64_t> slices_{0};
};

} // namespace dise::server

#endif // DISE_SERVER_RUN_QUEUE_HH
