#include "server/run_queue.hh"

#include <algorithm>
#include <thread>

namespace dise::server {

RunQueue::RunQueue(RunQueueOptions opts)
{
    slots_ = opts.slots
                 ? opts.slots
                 : std::max(2u, std::thread::hardware_concurrency());
    slice_ = opts.sliceInsts ? opts.sliceInsts : 50000;
}

bool
RunQueue::isExecVerb(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Cont:
      case RequestKind::Stepi:
      case RequestKind::RunToEnd:
      case RequestKind::ReverseContinue:
      case RequestKind::ReverseStep:
      case RequestKind::RunToEvent:
        return true;
      default:
        return false;
    }
}

void
RunQueue::acquireSlot()
{
    std::unique_lock<std::mutex> lk(mu_);
    uint64_t ticket = nextTicket_++;
    fifo_.push_back(ticket);
    cv_.wait(lk, [&] {
        return active_ < slots_ && fifo_.front() == ticket;
    });
    fifo_.pop_front();
    ++active_;
    // The next ticket may be admittable too (slots_ > 1).
    if (active_ < slots_ && !fifo_.empty())
        cv_.notify_all();
}

void
RunQueue::releaseSlot()
{
    std::lock_guard<std::mutex> lk(mu_);
    --active_;
    cv_.notify_all();
}

struct RunQueue::SlotToken
{
    explicit SlotToken(RunQueue &q) : q(q) { q.acquireSlot(); }
    ~SlotToken() { q.releaseSlot(); }
    RunQueue &q;
};

bool
RunQueue::drive(ManagedSession &s, RequestKind kind, uint64_t count,
                StopInfo &out, std::string *err)
{
    if (!isExecVerb(kind)) {
        if (err)
            *err = "not a resume verb";
        return false;
    }
    try {
        // Attach is the capability gate ("no experiment" cells): fail
        // it cleanly before burning a slot.
        if (!s.session.attached() && !s.session.attach()) {
            if (err)
                *err = std::string("the ") +
                       backendName(s.session.backendKind()) +
                       " backend cannot implement this session's "
                       "requests";
            return false;
        }
        bool finished = false;
        uint64_t remaining = count;
        while (!finished) {
            if (s.closing.load(std::memory_order_acquire)) {
                if (err)
                    *err = "session destroyed";
                return false;
            }
            {
                SlotToken slot(*this);
                slices_.fetch_add(1, std::memory_order_relaxed);
                switch (kind) {
                  case RequestKind::Cont:
                    out = s.session.contSlice(slice_);
                    finished = out.reason != StopReason::Step;
                    break;
                  case RequestKind::RunToEnd:
                    out = s.session.stepi(slice_);
                    finished = out.reason != StopReason::Step;
                    break;
                  case RequestKind::Stepi: {
                    uint64_t n = std::min(remaining, slice_);
                    out = s.session.stepi(n);
                    remaining -= n;
                    finished = remaining == 0 ||
                               out.reason != StopReason::Step;
                    break;
                  }
                  // The reverse verbs are bounded by the explored
                  // timeline; they run in one slot occupancy.
                  case RequestKind::ReverseContinue:
                    out = s.session.reverseContinue();
                    finished = true;
                    break;
                  case RequestKind::ReverseStep:
                    out = s.session.reverseStep(count);
                    finished = true;
                    break;
                  case RequestKind::RunToEvent:
                    out = s.session.runToEvent(count);
                    finished = true;
                    break;
                  default:
                    break;
                }
            }
            s.slices.fetch_add(1, std::memory_order_relaxed);
            s.publishProgress();
        }
        return true;
    } catch (const std::exception &e) {
        if (err)
            *err = e.what();
        return false;
    }
}

} // namespace dise::server
