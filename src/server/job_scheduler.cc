#include "server/job_scheduler.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dise::server {

JobScheduler::JobScheduler(JobSchedulerOptions opts)
{
    workers_ = opts.workers
                   ? opts.workers
                   : std::max(2u, std::thread::hardware_concurrency());
    slice_ = opts.sliceInsts ? opts.sliceInsts : 50000;
    faults_ = opts.faults;
    pool_.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i)
        pool_.emplace_back([this] { workerLoop(); });
}

JobScheduler::~JobScheduler()
{
    stop();
}

bool
JobScheduler::isExecVerb(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Cont:
      case RequestKind::Stepi:
      case RequestKind::RunToEnd:
      case RequestKind::ReverseContinue:
      case RequestKind::ReverseStep:
      case RequestKind::RunToEvent:
        return true;
      default:
        return false;
    }
}

// ------------------------------------------------------------ lifecycle

void
JobScheduler::stop()
{
    std::deque<TicketPtr> orphans;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        orphans.swap(ready_);
        for (const TicketPtr &t : orphans)
            finalize(lk, t, {false, "scheduler stopped"});
        cv_.notify_all();
    }
    for (std::thread &th : pool_)
        if (th.joinable())
            th.join();
    pool_.clear();
}

/** Mark @p t finished under the scheduler lock; completion callbacks
 *  run with the lock dropped (they may touch sessions or sockets). */
void
JobScheduler::finalize(std::unique_lock<std::mutex> &lk,
                       const TicketPtr &t, JobResult res)
{
    t->finished = true;
    t->result = std::move(res);
    jobsDone_.fetch_add(1, std::memory_order_relaxed);
    doneCv_.notify_all();
    if (t->onDone) {
        DoneFn done = std::move(t->onDone);
        JobResult copy = t->result;
        lk.unlock();
        done(copy);
        lk.lock();
    }
}

void
JobScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [&] { return stopping_ || !ready_.empty(); });
        if (stopping_)
            return;
        TicketPtr t;
        {
            TRACE_SPAN("sched", "sched.dequeue");
            t = ready_.front();
            ready_.pop_front();
            obs::metrics().schedQueueWaitUs.observe(
                obs::usSince(t->enqueuedNs));
        }

        if (t->cancelled.load(std::memory_order_acquire)) {
            finalize(lk, t, {false, "interrupted"});
            continue;
        }

        bool done = false;
        JobResult res;
        lk.unlock();
        if (faults_ &&
            faults_->shouldFail(persist::FaultInjector::Site::Slice)) {
            // Chaos hook: fail the job at a slice boundary — the same
            // cut point a cancel uses, so the session is at a valid,
            // deterministic position and the error path is exactly the
            // one a real mid-job failure would take.
            done = true;
            res = {false, "injected scheduler fault at slice boundary"};
        } else {
            uint64_t t0 = obs::nowNs();
            try {
                TRACE_SPAN("sched", "sched.slice");
                done = t->fn(slice_);
            } catch (const std::exception &e) {
                done = true;
                res = {false, e.what()};
            }
            obs::metrics().sliceDurationUs.observe(obs::usSince(t0));
        }
        slices_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();

        if (done)
            finalize(lk, t, std::move(res));
        else if (stopping_)
            finalize(lk, t, {false, "scheduler stopped"});
        else {
            TRACE_SPAN("sched", "sched.requeue");
            t->enqueuedNs = obs::nowNs();
            ready_.push_back(t); // round-robin: back of the line
        }
    }
}

// ------------------------------------------------------------- generic

JobScheduler::TicketPtr
JobScheduler::submit(SliceFn fn, DoneFn onDone)
{
    TRACE_SPAN("sched", "sched.submit");
    auto t = std::make_shared<Ticket>();
    t->fn = std::move(fn);
    t->onDone = std::move(onDone);
    t->enqueuedNs = obs::nowNs();
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) {
        finalize(lk, t, {false, "scheduler stopped"});
        return t;
    }
    ready_.push_back(t);
    cv_.notify_one();
    return t;
}

bool
JobScheduler::wait(const TicketPtr &t, std::string *err)
{
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [&] { return t->finished; });
    if (!t->result.ok && err)
        *err = t->result.error;
    return t->result.ok;
}

void
JobScheduler::cancel(const TicketPtr &t)
{
    if (t)
        t->cancelled.store(true, std::memory_order_release);
}

bool
JobScheduler::run(SliceFn fn, std::string *err)
{
    return wait(submit(std::move(fn)), err);
}

// -------------------------------------------------------- resume verbs

struct JobScheduler::ExecState
{
    StopInfo stop;
    uint64_t remaining = 0;
    bool begun = false;
};

bool
JobScheduler::precheck(ManagedSession &s, RequestKind kind,
                       std::string *err)
{
    if (!isExecVerb(kind)) {
        if (err)
            *err = "not a resume verb";
        return false;
    }
    // Attach is the capability gate ("no experiment" cells): fail it
    // cleanly on the submitting thread before queueing any work.
    try {
        if (!s.session.attached() && !s.session.attach()) {
            if (err)
                *err = std::string("the ") +
                       backendName(s.session.backendKind()) +
                       " backend cannot implement this session's "
                       "requests";
            return false;
        }
    } catch (const std::exception &e) {
        if (err)
            *err = e.what();
        return false;
    }
    return true;
}

JobScheduler::SliceFn
JobScheduler::makeExecSlice(ManagedSessionPtr sp, RequestKind kind,
                            uint64_t count,
                            std::shared_ptr<ExecState> st)
{
    st->remaining = count;
    return [sp = std::move(sp), kind, count,
            st = std::move(st)](uint64_t slice) {
        ManagedSession &s = *sp;
        if (s.closing.load(std::memory_order_acquire))
            throw std::runtime_error("session destroyed");
        // The slice is the exclusion unit: an RSP peek waiting on
        // sliceMu gets the session at this boundary, never mid-µop.
        std::lock_guard<std::mutex> sliceLk(s.sliceMu);
        bool done = false;
        switch (kind) {
          case RequestKind::Cont:
            st->stop = s.session.contSlice(slice);
            done = st->stop.reason != StopReason::Step;
            break;
          case RequestKind::RunToEnd:
            st->stop = s.session.stepi(slice);
            done = st->stop.reason != StopReason::Step;
            break;
          case RequestKind::Stepi: {
            uint64_t n = std::min(st->remaining, slice);
            st->stop = s.session.stepi(n);
            st->remaining -= n;
            done = st->remaining == 0 ||
                   st->stop.reason != StopReason::Step;
            break;
          }
          // The reverse verbs: one cheap restore, then bounded replay
          // quanta — no more slot-pinning for the whole replay.
          case RequestKind::ReverseContinue:
          case RequestKind::ReverseStep:
          case RequestKind::RunToEvent:
            if (!st->begun) {
                st->begun = true;
                st->stop = s.session.reverseBegin(kind, count, done);
            } else {
                st->stop = s.session.reverseSlice(slice, done);
            }
            break;
          default:
            throw std::runtime_error("not a resume verb");
        }
        s.slices.fetch_add(1, std::memory_order_relaxed);
        s.publishProgress();
        s.pushEvents();
        return done;
    };
}

bool
JobScheduler::drive(ManagedSession &s, RequestKind kind, uint64_t count,
                    StopInfo &out, std::string *err)
{
    if (!precheck(s, kind, err))
        return false;
    auto st = std::make_shared<ExecState>();
    // drive() is called with exclusive session access held by the
    // caller; the bare shared_ptr aliasing trick is safe because the
    // caller outlives the synchronous wait.
    ManagedSessionPtr alias(ManagedSessionPtr{}, &s);
    TicketPtr t = submit(makeExecSlice(alias, kind, count, st));
    if (!wait(t, err))
        return false;
    s.jobs.fetch_add(1, std::memory_order_relaxed);
    out = st->stop;
    return true;
}

JobScheduler::TicketPtr
JobScheduler::driveAsync(ManagedSessionPtr sp, RequestKind kind,
                         uint64_t count, ExecDoneFn done,
                         std::string *err)
{
    if (!sp) {
        if (err)
            *err = "no session";
        return nullptr;
    }
    if (!precheck(*sp, kind, err))
        return nullptr;
    auto st = std::make_shared<ExecState>();
    ManagedSessionPtr keep = sp;
    return submit(
        makeExecSlice(sp, kind, count, st),
        [keep, st, done = std::move(done)](const JobResult &res) {
            keep->jobs.fetch_add(1, std::memory_order_relaxed);
            if (res.ok) {
                done(true, false, st->stop, "");
                return;
            }
            if (res.interrupted()) {
                // The job stopped at a slice boundary: the session
                // sits at a valid, deterministic intermediate
                // position. Report it as the stop.
                done(true, true, keep->session.currentStop(), "");
                return;
            }
            done(false, false, st->stop, res.error);
        });
}

} // namespace dise::server
