/**
 * @file
 * The shard supervisor: one public port in front of N worker shard
 * processes, with session routing, live migration, crash recovery,
 * and queue-wait-driven load balancing.
 *
 * The supervisor owns the TCP port clients connect to. Every worker
 * shard (src/server/shard.hh) is a full DebugServer forked into its
 * own process — its own scheduler worker pool and share-nothing
 * session slice — listening on a private loopback port. The
 * supervisor never simulates anything; it routes:
 *
 *  - RSP connections are sniffed by first byte and byte-pumped
 *    verbatim to the least-loaded shard (gdb's one-target model
 *    means a connection, once placed, never needs re-routing).
 *  - Typed-wire connections are decoded line by line. Session-
 *    addressed verbs follow the routing table (id → shard, with a
 *    session-list probe fallback after crashes); session-create
 *    places new sessions on the least-loaded shard (or the one named
 *    by `shard=`); fleet verbs (session-list, server-stats) fan out
 *    and merge; `shard-stats` and `session-migrate` are answered by
 *    the supervisor itself. Each client connection keeps one
 *    downstream leg per shard it touches, and the supervisor
 *    transparently deselects on the old leg when the client's
 *    selection moves between shards.
 *
 * Live migration is export-then-adopt: `session-export` extracts the
 * session from its source shard as a portable image (digest
 * included), `session-adopt` rebuilds it on the target via
 * digest-verified replay. On any adopt failure the supervisor
 * re-adopts the image back onto the source — the session exists as
 * exactly its old or its new incarnation, never both, never neither.
 * A FaultInjector can be armed at the MigrateExport/MigrateAdopt
 * sites to chaos-test precisely that invariant.
 *
 * A monitor thread reaps crashed shards and respawns them on the
 * same store directory, so persisted sessions of a kill -9'd worker
 * come back (hibernated) on the replacement. The optional balancer
 * compares per-shard scheduler queue-wait means and migrates idle
 * sessions off the most backlogged shard when the spread exceeds a
 * ratio.
 */

#ifndef DISE_SERVER_SUPERVISOR_HH
#define DISE_SERVER_SUPERVISOR_HH

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/shard.hh"
#include "server/wire_client.hh"

namespace dise::server {

struct ShardSupervisorOptions
{
    /** Public TCP port on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
    /** Worker shard processes to fork. */
    unsigned shards = 2;
    /** Options template for every worker. storeDir, when set, is the
     *  *base* directory: shard k persists under storeDir/shard-<k>,
     *  so a respawned worker recovers exactly its own slice. */
    DebugServerOptions worker{};
    SessionManager::ProgramFactory factory{};
    bool verbose = false;
    /** Respawn crashed shards (tests may disable to observe death). */
    bool respawn = true;
    /** Balancer period; 0 = no background balancer (balanceOnce()
     *  still works for deterministic tests). */
    unsigned balanceIntervalMs = 0;
    /** Migrate when max/min shard queue-wait mean exceeds this. */
    double balanceRatio = 4.0;
    /** ...and the max mean is at least this many µs (don't shuffle
     *  sessions over noise on an idle fleet). */
    uint64_t balanceMinQueueWaitUs = 200;
    /** Supervisor-side migration chaos (MigrateExport/MigrateAdopt
     *  sites consulted before the corresponding wire call). Worker
     *  processes inherit whatever arming existed at spawn time; this
     *  injector drives the supervisor's own decision points. */
    persist::FaultInjector *faults = nullptr;
};

class ShardSupervisor
{
  public:
    explicit ShardSupervisor(ShardSupervisorOptions opts = {});
    ~ShardSupervisor();

    ShardSupervisor(const ShardSupervisor &) = delete;
    ShardSupervisor &operator=(const ShardSupervisor &) = delete;

    /** Fork the shards, bind the public port, start routing. */
    bool start();
    void stop();

    uint16_t port() const { return port_; }
    unsigned shardCount() const { return static_cast<unsigned>(shards_.size()); }
    /** The worker's pid (for kill -9 crash tests). */
    pid_t shardPid(unsigned k) const;
    uint16_t shardPort(unsigned k) const;
    uint64_t shardRestarts(unsigned k) const;

    /** SIGKILL a worker. The monitor respawns it (options permitting);
     *  waitForRespawn blocks until the replacement answers. */
    bool killShard(unsigned k);
    bool waitForRespawn(unsigned k, unsigned timeoutMs = 15000);

    /** Migrate session @p id to shard @p target (< 0 = least loaded
     *  other shard). Old-or-new on failure, never corrupt. */
    bool migrate(uint64_t id, int target, std::string *err = nullptr);
    /** One balancer pass; true when it migrated something. */
    bool balanceOnce(std::string *err = nullptr);
    uint64_t migrations() const
    {
        return migrations_.load(std::memory_order_relaxed);
    }

    /** Per-shard load rows (the `shard-stats` verb's payload). */
    std::vector<ShardStatsRow> shardStats();
    /** Fleet-wide merged stats (the `server-stats` payload). */
    ServerStats fleetStats();

  private:
    struct Shard
    {
        ShardProcess proc;
        std::atomic<uint64_t> restarts{0};
        std::atomic<bool> alive{false};
        /** Control leg for supervisor-originated verbs (probes,
         *  stats, export/adopt); lazily (re)connected. */
        std::mutex ctlMu;
        std::unique_ptr<WireClient> ctl;
    };

    void acceptLoop(int listenFd);
    void serveConnection(int fd);
    void serveRspProxy(int fd, char firstByte);
    void serveWireProxy(int fd);
    void monitorLoop();
    void balanceLoop();

    /** Typed call on shard k's control leg (reconnects once). */
    bool ctlCall(unsigned k, const Request &req, Response &resp,
                 std::string *err = nullptr);
    /** Shard currently hosting @p id: routing table, then probe. */
    bool locate(uint64_t id, unsigned &shard, std::string *err);
    /** Shard with the fewest live sessions (ties → lowest index). */
    unsigned leastLoadedShard(int excluding = -1);

    ShardSupervisorOptions opts_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ShardProcessSpec> specs_;

    std::mutex routeMu_;
    std::unordered_map<uint64_t, unsigned> route_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    std::thread monitorThread_;
    std::thread balanceThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> migrations_{0};
    std::atomic<uint64_t> connectionsServed_{0};

    struct Conn
    {
        int fd = -1;
        std::atomic<bool> done{false};
        std::thread th;
    };
    std::mutex connMu_;
    std::list<Conn> conns_;
};

} // namespace dise::server

#endif // DISE_SERVER_SUPERVISOR_HH
