/**
 * @file
 * The execution scheduler of the multi-session server, generalized
 * from the old RunQueue into a preemptible **Job** model.
 *
 * Every long-running operation — a forward resume, a reverse replay
 * (reverse-continue / reverse-step / run-to-event), a post-attach
 * rebuild-replay, an interval-parallel replay worker — is a Job: a
 * closure the scheduler calls one bounded µop-slice at a time. A pool
 * of W worker threads pops jobs from a FIFO ready queue, runs exactly
 * one slice, and requeues unfinished jobs at the back, so S contending
 * jobs round-robin — each advances one slice per scheduling round and
 * no job occupies a worker end-to-end. A reverse verb that replays a
 * million instructions therefore interleaves with a forward-stepping
 * session even on a single worker, which is the property that keeps
 * the server interactive under heavy replay load.
 *
 * Submission is either synchronous (drive(): submit + wait — the shape
 * every blocking protocol verb uses) or asynchronous (driveAsync():
 * completion callback, powering RSP non-stop `%Stop` notifications and
 * wire event push). Jobs are interruptible between slices: cancel()
 * finalizes the job with the "interrupted" error at its next
 * scheduling point, which the server layers translate into a stop at
 * the session's current (valid, deterministic) intermediate position —
 * a gdb Ctrl-C against a runaway continue.
 *
 * Sessions are share-nothing; a job needs no lock but its caller's
 * exclusive session access, which the submitting connection delegates
 * to the scheduler for the job's lifetime (the old RunQueue pinned the
 * session to its connection thread instead — with a worker pool the
 * session migrates between workers at slice boundaries, each handoff
 * ordered by the scheduler mutex). Teardown mid-run stays a
 * slice-boundary affair: session jobs re-check the closing flag before
 * every slice.
 */

#ifndef DISE_SERVER_JOB_SCHEDULER_HH
#define DISE_SERVER_JOB_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/fault_injector.hh"
#include "server/session_manager.hh"

namespace dise::server {

struct JobSchedulerOptions
{
    /** Worker threads (execution slots); 0 = hardware concurrency. */
    unsigned workers = 0;
    /** Application instructions per slice. */
    uint64_t sliceInsts = 50000;
    /** When set, consulted at every slice boundary (Site::Slice); a
     *  hit fails the job cleanly — the session stays at its last
     *  slice-boundary position, exactly like a cancel. Chaos-testing
     *  hook; not owned. */
    persist::FaultInjector *faults = nullptr;
};

class JobScheduler
{
  public:
    /**
     * One bounded slice of a preemptible job. Returns true when the
     * job completed; throw to fail it (the scheduler catches and
     * reports the message).
     */
    using SliceFn = std::function<bool(uint64_t sliceInsts)>;

    struct JobResult
    {
        bool ok = true;
        /** "interrupted" when cancelled; an exception message on
         *  failure. */
        std::string error;
        bool interrupted() const { return error == "interrupted"; }
    };

    /** Completion callback; runs on a worker thread, outside locks. */
    using DoneFn = std::function<void(const JobResult &)>;

    /** Shared handle to one submitted job. */
    class Ticket
    {
        friend class JobScheduler;
        SliceFn fn;
        DoneFn onDone;
        std::atomic<bool> cancelled{false};
        bool finished = false; ///< guarded by the scheduler mutex
        JobResult result;
        /** obs::nowNs() at submit/requeue; feeds the queue-wait
         *  histogram when a worker dequeues the job. */
        uint64_t enqueuedNs = 0;
    };
    using TicketPtr = std::shared_ptr<Ticket>;

    /** Async exec-verb completion: the final stop, or an error. */
    using ExecDoneFn = std::function<void(
        bool ok, bool interrupted, const StopInfo &stop,
        const std::string &err)>;

    explicit JobScheduler(JobSchedulerOptions opts = {});
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /** Is @p kind a resume verb drive() accepts? */
    static bool isExecVerb(RequestKind kind);

    /** @name Generic preemptible jobs */
    ///@{
    TicketPtr submit(SliceFn fn, DoneFn onDone = {});
    /** Block until @p t finishes. False (with @p err) on failure. */
    bool wait(const TicketPtr &t, std::string *err = nullptr);
    /** Finalize @p t with the "interrupted" result at its next
     *  scheduling point (a job mid-slice finishes the slice first). */
    void cancel(const TicketPtr &t);
    /** submit + wait. */
    bool run(SliceFn fn, std::string *err = nullptr);
    ///@}

    /** @name Session resume verbs */
    ///@{
    /**
     * Run @p kind to completion on @p s as a preemptible job,
     * blocking the calling thread. The caller must have exclusive use
     * of the session (hold s.mu for shared sessions) and delegates it
     * to the scheduler until this returns. False with @p err when the
     * session is destroyed mid-run, the backend cannot attach, or the
     * verb is not a resume verb; @p out holds the final stop
     * otherwise.
     */
    bool drive(ManagedSession &s, RequestKind kind, uint64_t count,
               StopInfo &out, std::string *err = nullptr);
    /**
     * The non-blocking form: returns once the job is queued; @p done
     * fires from a worker when it finishes (an interrupted job
     * reports the session's current position as its stop). Returns
     * nullptr (with @p err) when the verb cannot start. The returned
     * ticket can be cancel()ed. @p sp keeps the session alive for the
     * job's duration.
     */
    TicketPtr driveAsync(ManagedSessionPtr sp, RequestKind kind,
                         uint64_t count, ExecDoneFn done,
                         std::string *err = nullptr);
    ///@}

    /** Fail every queued job and join the workers (idempotent). */
    void stop();

    unsigned workers() const { return workers_; }
    uint64_t sliceInsts() const { return slice_; }
    uint64_t slicesRun() const
    {
        return slices_.load(std::memory_order_relaxed);
    }
    uint64_t jobsCompleted() const
    {
        return jobsDone_.load(std::memory_order_relaxed);
    }

  private:
    /** Shared state of one in-flight exec verb. */
    struct ExecState;

    SliceFn makeExecSlice(ManagedSessionPtr sp, RequestKind kind,
                          uint64_t count,
                          std::shared_ptr<ExecState> st);
    bool precheck(ManagedSession &s, RequestKind kind,
                  std::string *err);
    void workerLoop();
    void finalize(std::unique_lock<std::mutex> &lk, const TicketPtr &t,
                  JobResult res);

    std::mutex mu_;
    std::condition_variable cv_;     ///< workers: ready work / stop
    std::condition_variable doneCv_; ///< waiters: job finished
    std::deque<TicketPtr> ready_;
    std::vector<std::thread> pool_;
    bool stopping_ = false;

    unsigned workers_;
    uint64_t slice_;
    persist::FaultInjector *faults_;
    std::atomic<uint64_t> slices_{0};
    std::atomic<uint64_t> jobsDone_{0};
};

} // namespace dise::server

#endif // DISE_SERVER_JOB_SCHEDULER_HH
