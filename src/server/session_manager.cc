#include "server/session_manager.hh"

#include "workloads/workload.hh"

namespace dise::server {

bool
defaultProgramFactory(const std::string &name, Program &out)
{
    std::string n = name.empty() ? "demo" : name;
    if (n == "demo" || n == "heisenbug") {
        out = buildHeisenbugDemo();
        return true;
    }
    for (const std::string &w : workloadNames()) {
        if (w == n) {
            out = buildWorkload(n).program;
            return true;
        }
    }
    return false;
}

SessionManager::SessionManager(SessionManagerOptions opts,
                               ProgramFactory factory)
    : opts_(std::move(opts)), factory_(std::move(factory))
{
    if (!factory_)
        factory_ = defaultProgramFactory;
}

ManagedSessionPtr
SessionManager::create(const std::string &workload, BackendKind backend,
                       bool exclusive, std::string *err)
{
    // Build the program outside the lock (workload construction is the
    // expensive part), then admit under it.
    Program prog;
    if (!factory_(workload, prog)) {
        // A typo'd workload is a client error, not an admission-cap
        // rejection; rejected_ only counts the cap.
        if (err)
            *err = "unknown workload '" + workload + "'";
        return nullptr;
    }
    SessionOptions sopts = opts_.session;
    sopts.debugger.backend = backend;

    std::lock_guard<std::mutex> lk(mu_);
    if (opts_.maxSessions && sessions_.size() >= opts_.maxSessions) {
        ++rejected_;
        if (err)
            *err = "session cap reached (" +
                   std::to_string(opts_.maxSessions) + ")";
        return nullptr;
    }
    uint64_t id = nextId_++;
    auto ms = std::make_shared<ManagedSession>(
        id, workload.empty() ? std::string("demo") : workload,
        std::move(prog), std::move(sopts), exclusive);
    sessions_.emplace(id, ms);
    ++created_;
    peak_ = std::max<uint64_t>(peak_, sessions_.size());
    return ms;
}

ManagedSessionPtr
SessionManager::find(uint64_t id, bool forSelect)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return nullptr;
    if (forSelect && it->second->exclusive)
        return nullptr;
    return it->second;
}

bool
SessionManager::destroy(uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    ManagedSessionPtr ms = it->second;
    sessions_.erase(it);
    ms->closing.store(true, std::memory_order_release);
    // Fold the published counters into the retired totals; a slice
    // still in flight publishes once more, but its session no longer
    // appears in either the live list or (beyond this snapshot) the
    // totals — a bounded, documented undercount at teardown.
    retiredUops_ += ms->uops.load(std::memory_order_relaxed);
    retiredInsts_ += ms->appInsts.load(std::memory_order_relaxed);
    retiredEvents_ += ms->events.load(std::memory_order_relaxed);
    retiredJobs_ += ms->jobs.load(std::memory_order_relaxed);
    retiredPushed_ += ms->eventsPushed.load(std::memory_order_relaxed);
    ++destroyed_;
    return true;
}

std::vector<uint64_t>
SessionManager::ids() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<uint64_t> out;
    out.reserve(sessions_.size());
    for (const auto &kv : sessions_)
        out.push_back(kv.first);
    return out;
}

size_t
SessionManager::count() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return sessions_.size();
}

ServerStats
SessionManager::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServerStats s;
    s.activeSessions = sessions_.size();
    s.peakSessions = peak_;
    s.created = created_;
    s.destroyed = destroyed_;
    s.rejected = rejected_;
    s.maxSessions = opts_.maxSessions;
    s.totalUops = retiredUops_;
    s.totalAppInsts = retiredInsts_;
    s.totalEvents = retiredEvents_;
    s.jobs = retiredJobs_;
    s.eventsPushed = retiredPushed_;
    for (const auto &kv : sessions_) {
        const ManagedSession &ms = *kv.second;
        s.totalUops += ms.uops.load(std::memory_order_relaxed);
        s.totalAppInsts += ms.appInsts.load(std::memory_order_relaxed);
        s.totalEvents += ms.events.load(std::memory_order_relaxed);
        s.jobs += ms.jobs.load(std::memory_order_relaxed);
        s.eventsPushed +=
            ms.eventsPushed.load(std::memory_order_relaxed);
        s.subscribers += ms.subscriberCount();
    }
    return s;
}

} // namespace dise::server
