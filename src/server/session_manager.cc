#include "server/session_manager.hh"

#include "workloads/workload.hh"

namespace dise::server {

bool
defaultProgramFactory(const std::string &name, Program &out)
{
    std::string n = name.empty() ? "demo" : name;
    if (n == "demo" || n == "heisenbug") {
        out = buildHeisenbugDemo();
        return true;
    }
    if (n == "tooldemo") {
        out = buildToolDemo();
        return true;
    }
    for (const std::string &w : workloadNames()) {
        if (w == n) {
            out = buildWorkload(n).program;
            return true;
        }
    }
    return false;
}

SessionManager::SessionManager(SessionManagerOptions opts,
                               ProgramFactory factory)
    : opts_(std::move(opts)), factory_(std::move(factory))
{
    if (!factory_)
        factory_ = defaultProgramFactory;
    if (!opts_.idStride)
        opts_.idStride = 1;
    if (!opts_.idStart)
        opts_.idStart = 1;
    nextId_ = opts_.idStart;
}

void
SessionManager::reserveIdLocked(uint64_t id)
{
    if (nextId_ > id)
        return;
    uint64_t steps = (id - nextId_) / opts_.idStride + 1;
    nextId_ += steps * opts_.idStride;
}

void
SessionManager::touch(ManagedSession &ms)
{
    ms.lastTouch.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
}

void
SessionManager::adoptStore(persist::SessionStore *store)
{
    std::lock_guard<std::mutex> lk(mu_);
    store_ = store;
    if (!store_)
        return;
    for (const persist::StoreEntryMeta &e : store_->entries()) {
        if (!sessions_.count(e.id))
            hibernated_[e.id] = e.workload;
        reserveIdLocked(e.id);
    }
}

uint64_t
SessionManager::victimLocked(const std::set<uint64_t> &tried) const
{
    const ManagedSessionPtr *best = nullptr;
    for (const auto &kv : sessions_) {
        const ManagedSessionPtr &ms = kv.second;
        // Evictable = idle: not connection-bound, no live event
        // subscriptions, and the table holds the only reference (no
        // connection has it selected, no job is driving it).
        if (ms->exclusive || ms->subscriberCount() > 0 ||
            ms.use_count() > 1)
            continue;
        if (tried.count(kv.first))
            continue;
        if (!best ||
            ms->lastTouch.load(std::memory_order_relaxed) <
                (*best)->lastTouch.load(std::memory_order_relaxed))
            best = &kv.second;
    }
    return best ? (*best)->id : 0;
}

bool
SessionManager::exportToStore(ManagedSession &ms, std::string *err)
{
    persist::SessionImage img;
    img.id = ms.id;
    img.workload = ms.workload;
    std::string why;
    if (!ms.session.exportImage(img, &why)) {
        if (err)
            *err = why;
        return false;
    }
    persist::StoreResult res = store_->put(img);
    if (!res.ok) {
        if (err)
            *err = std::string(persist::storeErrName(res.err)) + ": " +
                   res.detail;
        return false;
    }
    return true;
}

ManagedSessionPtr
SessionManager::create(const std::string &workload, BackendKind backend,
                       bool exclusive, std::string *err)
{
    // Build the program outside the lock (workload construction is the
    // expensive part), then admit under it.
    Program prog;
    if (!factory_(workload, prog)) {
        // A typo'd workload is a client error, not an admission-cap
        // rejection; rejected_ only counts the cap.
        if (err)
            *err = "unknown workload '" + workload + "'";
        return nullptr;
    }
    SessionOptions sopts = opts_.session;
    sopts.debugger.backend = backend;

    // Admission loop: at the cap, hibernate the LRU idle session and
    // retry; a victim that turns busy (or whose persistence fails) is
    // skipped, and only when nothing is evictable does the create
    // reject. Eviction runs outside mu_ (it serializes on the victim,
    // not the table).
    std::set<uint64_t> tried;
    for (;;) {
        uint64_t victim = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!opts_.maxSessions ||
                sessions_.size() < opts_.maxSessions) {
                uint64_t id = nextId_;
                nextId_ += opts_.idStride;
                auto ms = std::make_shared<ManagedSession>(
                    id,
                    workload.empty() ? std::string("demo") : workload,
                    std::move(prog), std::move(sopts), exclusive);
                sessions_.emplace(id, ms);
                ++created_;
                peak_ = std::max<uint64_t>(peak_, sessions_.size());
                touch(*ms);
                return ms;
            }
            if (store_)
                victim = victimLocked(tried);
            if (!victim) {
                ++rejected_;
                if (err)
                    *err = "session cap reached (" +
                           std::to_string(opts_.maxSessions) + ")" +
                           (store_ ? " and no idle session to "
                                     "hibernate"
                                   : "");
                return nullptr;
            }
        }
        std::string hibErr;
        if (!hibernate(victim, &hibErr))
            tried.insert(victim); // victim got busy / store failure
    }
}

ManagedSessionPtr
SessionManager::find(uint64_t id, bool forSelect, std::string *err)
{
    bool sleeping = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = sessions_.find(id);
        if (it != sessions_.end()) {
            if (forSelect && it->second->exclusive) {
                if (err)
                    *err = "session is connection-bound";
                return nullptr;
            }
            return it->second;
        }
        sleeping = store_ && hibernated_.count(id) > 0;
    }
    if (!sleeping) {
        if (err)
            *err = "no such session";
        return nullptr;
    }
    return resurrect(id, err);
}

bool
SessionManager::hibernate(uint64_t id, std::string *err)
{
    if (!store_) {
        if (err)
            *err = "the server has no session store (--store-dir)";
        return false;
    }
    ManagedSessionPtr ms;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
            if (err)
                *err = hibernated_.count(id)
                           ? "session is already hibernated"
                           : "no such session";
            return false;
        }
        if (it->second->exclusive) {
            if (err)
                *err = "session is connection-bound (RSP target)";
            return false;
        }
        if (it->second->subscriberCount() > 0) {
            if (err)
                *err = "session has live event subscriptions";
            return false;
        }
        if (it->second.use_count() > 1) {
            if (err)
                *err = "session is busy (selected by a connection or "
                       "running a job)";
            return false;
        }
        ms = it->second;
        // Out of the table: no find() can hand it out while the
        // export runs, so this reference is exclusive without
        // touching the session lock.
        sessions_.erase(it);
    }
    std::string why;
    if (!exportToStore(*ms, &why)) {
        std::lock_guard<std::mutex> lk(mu_);
        sessions_.emplace(id, ms); // intact, exactly as it was
        if (err)
            *err = why;
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    hibernated_[id] = ms->workload;
    ++evictions_;
    retiredUops_ += ms->uops.load(std::memory_order_relaxed);
    retiredInsts_ += ms->appInsts.load(std::memory_order_relaxed);
    retiredEvents_ += ms->events.load(std::memory_order_relaxed);
    retiredJobs_ += ms->jobs.load(std::memory_order_relaxed);
    retiredPushed_ += ms->eventsPushed.load(std::memory_order_relaxed);
    retiredDropped_ += ms->droppedSinks.load(std::memory_order_relaxed);
    return true;
}

bool
SessionManager::persist(uint64_t id, std::string *err, uint64_t *digest)
{
    if (!store_) {
        if (err)
            *err = "the server has no session store (--store-dir)";
        return false;
    }
    ManagedSessionPtr ms = find(id, false, err);
    if (!ms)
        return false;
    std::lock_guard<std::mutex> slk(ms->mu);
    persist::SessionImage img;
    img.id = ms->id;
    img.workload = ms->workload;
    std::string why;
    if (!ms->session.exportImage(img, &why)) {
        if (err)
            *err = why;
        return false;
    }
    persist::StoreResult res = store_->put(img);
    if (!res.ok) {
        if (err)
            *err = std::string(persist::storeErrName(res.err)) + ": " +
                   res.detail;
        return false;
    }
    if (digest)
        *digest = img.digest;
    return true;
}

bool
SessionManager::extract(uint64_t id, persist::SessionImage &img,
                        std::string *err)
{
    ManagedSessionPtr ms;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
            // A hibernated session migrates as its stored image.
            auto h = hibernated_.find(id);
            if (h == hibernated_.end() || !store_) {
                if (err)
                    *err = "no such session";
                return false;
            }
        } else {
            if (it->second->exclusive) {
                if (err)
                    *err = "session is connection-bound (RSP target)";
                return false;
            }
            if (it->second->subscriberCount() > 0) {
                if (err)
                    *err = "session has live event subscriptions";
                return false;
            }
            if (it->second.use_count() > 1) {
                if (err)
                    *err = "session is busy (selected by a connection "
                           "or running a job)";
                return false;
            }
            ms = it->second;
            // Out of the table: no find() can hand it out while the
            // export runs, so this reference is exclusive.
            sessions_.erase(it);
        }
    }
    if (!ms) {
        persist::StoreResult res = store_->load(id, img);
        if (!res.ok) {
            if (err)
                *err = std::string("extract failed: ") +
                       persist::storeErrName(res.err) + ": " +
                       res.detail;
            return false;
        }
        std::lock_guard<std::mutex> lk(mu_);
        hibernated_.erase(id);
        store_->erase(id);
        ++migratedOut_;
        return true;
    }
    img = persist::SessionImage{};
    img.id = ms->id;
    img.workload = ms->workload;
    std::string why;
    if (!ms->session.exportImage(img, &why)) {
        std::lock_guard<std::mutex> lk(mu_);
        sessions_.emplace(id, ms); // intact, exactly as it was
        if (err)
            *err = why;
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    // The session now lives on another shard: fold its counters into
    // the retired totals and drop any on-disk artifact so a crash
    // here cannot resurrect a zombie copy.
    retiredUops_ += ms->uops.load(std::memory_order_relaxed);
    retiredInsts_ += ms->appInsts.load(std::memory_order_relaxed);
    retiredEvents_ += ms->events.load(std::memory_order_relaxed);
    retiredJobs_ += ms->jobs.load(std::memory_order_relaxed);
    retiredPushed_ += ms->eventsPushed.load(std::memory_order_relaxed);
    retiredDropped_ += ms->droppedSinks.load(std::memory_order_relaxed);
    if (store_)
        store_->erase(id);
    ++migratedOut_;
    return true;
}

ManagedSessionPtr
SessionManager::adopt(const persist::SessionImage &img, std::string *err)
{
    // Serialize with resurrect(): two arrivals of the same id race on
    // the collision check otherwise.
    std::lock_guard<std::mutex> rlk(resurrectMu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (sessions_.count(img.id) || hibernated_.count(img.id)) {
            if (err)
                *err = "session id " + std::to_string(img.id) +
                       " already exists on this shard";
            return nullptr;
        }
    }
    Program prog;
    if (!factory_(img.workload, prog)) {
        if (err)
            *err = "workload '" + img.workload + "' is not buildable "
                   "on this shard";
        return nullptr;
    }
    SessionOptions sopts = opts_.session;
    sopts.debugger.backend = img.backend;
    auto ms = std::make_shared<ManagedSession>(
        img.id, img.workload, std::move(prog), std::move(sopts), false);

    {
        TRACE_SPAN("session", "session.adopt");
        uint64_t t0 = obs::nowNs();
        bool done = false;
        std::string serr;
        if (!ms->session.resurrectBegin(img, done, &serr)) {
            if (err)
                *err = "adopt replay failed: " + serr;
            return nullptr;
        }
        while (!done) {
            if (!ms->session.resurrectStep(0, done, &serr)) {
                if (err)
                    *err = "adopt replay failed: " + serr;
                return nullptr;
            }
        }
        obs::metrics().resurrectReplayUs.observe(obs::usSince(t0));
    }
    ms->publishProgress();

    // Make the migration durable on this shard before admitting: a
    // crash from here on recovers the session from this store.
    if (store_) {
        persist::StoreResult res = store_->put(img);
        if (!res.ok) {
            if (err)
                *err = std::string("adopt persist failed: ") +
                       persist::storeErrName(res.err) + ": " +
                       res.detail;
            return nullptr;
        }
    }

    // Admit under the cap, evicting an LRU idle victim if needed
    // (mirroring create()).
    std::set<uint64_t> tried;
    for (;;) {
        uint64_t victim = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!opts_.maxSessions ||
                sessions_.size() < opts_.maxSessions) {
                sessions_.emplace(img.id, ms);
                reserveIdLocked(img.id);
                ++migratedIn_;
                peak_ = std::max<uint64_t>(peak_, sessions_.size());
                touch(*ms);
                return ms;
            }
            victim = store_ ? victimLocked(tried) : 0;
            if (!victim) {
                if (store_)
                    store_->erase(img.id);
                if (err)
                    *err = "session cap reached (" +
                           std::to_string(opts_.maxSessions) +
                           ") and no idle session to hibernate";
                return nullptr;
            }
        }
        std::string hibErr;
        if (!hibernate(victim, &hibErr))
            tried.insert(victim);
    }
}

ManagedSessionPtr
SessionManager::resurrect(uint64_t id, std::string *err)
{
    // One resurrection at a time: the loser of a select race waits
    // here, then finds the session live.
    std::lock_guard<std::mutex> rlk(resurrectMu_);
    std::string workload;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = sessions_.find(id);
        if (it != sessions_.end())
            return it->second;
        auto h = hibernated_.find(id);
        if (h == hibernated_.end()) {
            if (err)
                *err = "no such session";
            return nullptr;
        }
        workload = h->second;
    }

    auto quarantined = [&](const std::string &why) -> ManagedSessionPtr {
        store_->quarantine(id, why);
        std::lock_guard<std::mutex> lk(mu_);
        hibernated_.erase(id);
        if (err)
            *err = "resurrection failed (image quarantined): " + why;
        return nullptr;
    };

    persist::SessionImage img;
    persist::StoreResult res = store_->load(id, img);
    if (!res.ok) {
        // An unreadable/corrupt image is already quarantine-classified
        // by the store; a Missing entry means the store and the
        // hibernated table drifted (should not happen) — drop it too.
        std::lock_guard<std::mutex> lk(mu_);
        hibernated_.erase(id);
        if (err)
            *err = std::string("resurrection failed: ") +
                   persist::storeErrName(res.err) + ": " + res.detail;
        return nullptr;
    }

    Program prog;
    if (!factory_(workload, prog))
        return quarantined("workload '" + workload +
                           "' is no longer buildable");
    SessionOptions sopts = opts_.session;
    sopts.debugger.backend = img.backend;
    auto ms = std::make_shared<ManagedSession>(
        id, workload, std::move(prog), std::move(sopts), false);

    {
        TRACE_SPAN("session", "session.resurrect");
        uint64_t t0 = obs::nowNs();
        bool done = false;
        std::string serr;
        if (!ms->session.resurrectBegin(img, done, &serr))
            return quarantined(serr);
        while (!done)
            if (!ms->session.resurrectStep(0, done, &serr))
                return quarantined(serr);
        obs::metrics().resurrectReplayUs.observe(obs::usSince(t0));
    }
    ms->publishProgress();

    // Admit the resurrected session under the cap; at the cap an LRU
    // idle victim hibernates to make room (mirroring create()).
    std::set<uint64_t> tried;
    for (;;) {
        uint64_t victim = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!opts_.maxSessions ||
                sessions_.size() < opts_.maxSessions) {
                hibernated_.erase(id);
                sessions_.emplace(id, ms);
                ++resurrections_;
                peak_ = std::max<uint64_t>(peak_, sessions_.size());
                touch(*ms);
                return ms;
            }
            victim = victimLocked(tried);
            if (!victim) {
                if (err)
                    *err = "session cap reached (" +
                           std::to_string(opts_.maxSessions) +
                           ") and no idle session to hibernate";
                return nullptr; // stays hibernated; retry later
            }
        }
        std::string hibErr;
        if (!hibernate(victim, &hibErr))
            tried.insert(victim);
    }
}

bool
SessionManager::destroy(uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
        // A hibernated session is destroyed by erasing its image.
        auto h = hibernated_.find(id);
        if (h == hibernated_.end())
            return false;
        hibernated_.erase(h);
        if (store_)
            store_->erase(id);
        ++destroyed_;
        return true;
    }
    ManagedSessionPtr ms = it->second;
    sessions_.erase(it);
    ms->closing.store(true, std::memory_order_release);
    // Fold the published counters into the retired totals; a slice
    // still in flight publishes once more, but its session no longer
    // appears in either the live list or (beyond this snapshot) the
    // totals — a bounded, documented undercount at teardown.
    retiredUops_ += ms->uops.load(std::memory_order_relaxed);
    retiredInsts_ += ms->appInsts.load(std::memory_order_relaxed);
    retiredEvents_ += ms->events.load(std::memory_order_relaxed);
    retiredJobs_ += ms->jobs.load(std::memory_order_relaxed);
    retiredPushed_ += ms->eventsPushed.load(std::memory_order_relaxed);
    retiredDropped_ += ms->droppedSinks.load(std::memory_order_relaxed);
    // The on-disk image (if any) dies with the session.
    if (store_)
        store_->erase(id);
    ++destroyed_;
    return true;
}

std::vector<uint64_t>
SessionManager::ids() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<uint64_t> out;
    out.reserve(sessions_.size() + hibernated_.size());
    for (const auto &kv : sessions_)
        out.push_back(kv.first);
    for (const auto &kv : hibernated_)
        if (!sessions_.count(kv.first))
            out.push_back(kv.first);
    return out;
}

size_t
SessionManager::count() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return sessions_.size();
}

ServerStats
SessionManager::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServerStats s;
    s.activeSessions = sessions_.size();
    s.peakSessions = peak_;
    s.created = created_;
    s.destroyed = destroyed_;
    s.rejected = rejected_;
    s.maxSessions = opts_.maxSessions;
    s.totalUops = retiredUops_;
    s.totalAppInsts = retiredInsts_;
    s.totalEvents = retiredEvents_;
    s.jobs = retiredJobs_;
    s.eventsPushed = retiredPushed_;
    s.dropped = retiredDropped_;
    for (const auto &kv : sessions_) {
        const ManagedSession &ms = *kv.second;
        s.totalUops += ms.uops.load(std::memory_order_relaxed);
        s.totalAppInsts += ms.appInsts.load(std::memory_order_relaxed);
        s.totalEvents += ms.events.load(std::memory_order_relaxed);
        s.jobs += ms.jobs.load(std::memory_order_relaxed);
        s.eventsPushed +=
            ms.eventsPushed.load(std::memory_order_relaxed);
        s.dropped += ms.droppedSinks.load(std::memory_order_relaxed);
        s.subscribers += ms.subscriberCount();
    }
    s.hibernated = hibernated_.size();
    s.evictions = evictions_;
    s.resurrections = resurrections_;
    s.migratedIn = migratedIn_;
    s.migratedOut = migratedOut_;
    if (store_)
        s.quarantined = store_->counters().quarantined;
    // Per-tool counters, rolled up by tool name across live sessions.
    // Best-effort: a session mid-verb (its mutex held) is skipped and
    // folds into the next snapshot rather than blocking stats.
    for (const auto &kv : sessions_) {
        ManagedSession &ms = *kv.second;
        std::unique_lock<std::mutex> slk(ms.mu, std::try_to_lock);
        if (!slk.owns_lock() || !ms.session.attached())
            continue;
        for (const tools::ToolStatsRow &row :
             ms.session.debugger().backend().tools().statsRows()) {
            tools::ToolStatsRow *agg = nullptr;
            for (tools::ToolStatsRow &t : s.tools)
                if (t.name == row.name)
                    agg = &t;
            if (!agg) {
                s.tools.push_back(row);
            } else {
                agg->uopsSeen += row.uopsSeen;
                agg->checks += row.checks;
                agg->suppressed += row.suppressed;
                agg->findings += row.findings;
            }
        }
    }
    return s;
}

} // namespace dise::server
