/**
 * @file
 * The crash-consistent on-disk session store.
 *
 * Layout: one directory holding versioned image files
 * (`sess-<id>.v<N>.img`, each a checksummed SessionImage) plus a
 * checksummed `manifest.bin` naming the current version of every live
 * entry. Every mutation follows write-then-rename:
 *
 *   1. the new image is written to a `.tmp` file and renamed into
 *      place under its versioned name (never overwriting a live file);
 *   2. a new manifest is written to a `.tmp` file and renamed over
 *      `manifest.bin` — THE commit point;
 *   3. the superseded image file is removed (best effort — a crash
 *      here leaves an orphan, collected at the next open()).
 *
 * A crash at any byte therefore leaves either the old manifest (naming
 * only old, fully-written images) or the new one — never a state that
 * references a torn file. open() validates every referenced image
 * (magic, version, checksum, id) and QUARANTINES failures as typed
 * records instead of aborting: one rotten entry must not take down a
 * recovering server. A corrupt or missing manifest degrades to a
 * salvage scan that adopts the newest valid image of each session id.
 *
 * All filesystem access goes through the injectable Vfs, so the fault
 * battery (tests/persist_test.cc) can force a failure at every call
 * site and assert the store stays consistent.
 */

#ifndef DISE_PERSIST_STORE_HH
#define DISE_PERSIST_STORE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "persist/image.hh"
#include "persist/vfs.hh"

namespace dise::persist {

/** Typed store failure classes. */
enum class StoreErr : uint8_t {
    None,
    Io,          ///< filesystem primitive failed
    Injected,    ///< an injected fault fired (the chaos battery)
    Truncated,   ///< image/manifest ran out of bytes
    BadMagic,
    BadVersion,
    BadChecksum,
    Malformed,   ///< structurally invalid content
    BadManifest, ///< manifest unreadable (salvage scan ran)
    DuplicateId, ///< two live entries claim one session id
    Missing,     ///< no such session in the store
};

const char *storeErrName(StoreErr err);

struct StoreResult
{
    bool ok = true;
    StoreErr err = StoreErr::None;
    std::string detail;

    static StoreResult
    failure(StoreErr e, std::string d)
    {
        return {false, e, std::move(d)};
    }
};

/** One corrupt artifact set aside during open()/load(). */
struct QuarantineRecord
{
    std::string file;
    StoreErr err = StoreErr::None;
    std::string detail;
};

/** Cheap per-entry metadata (no image decode needed). */
struct StoreEntryMeta
{
    uint64_t id = 0;
    std::string workload;
    BackendKind backend = BackendKind::Dise;
    uint64_t appInsts = 0;
    uint64_t digest = 0;
    uint64_t bytes = 0;
};

struct StoreCounters
{
    uint64_t images = 0; ///< live entries
    uint64_t bytes = 0;  ///< bytes across live entries
    uint64_t puts = 0;
    uint64_t loads = 0;
    uint64_t erases = 0;
    uint64_t quarantined = 0;
    uint64_t orphansRemoved = 0;
};

class SessionStore
{
  public:
    SessionStore(std::string dir, Vfs &vfs);

    /** Scan + validate the directory. Always callable on a fresh or
     *  damaged store: corruption quarantines, it never fails open()
     *  (only an unusable directory does). */
    StoreResult open();

    /** Persist @p img (replacing any previous version of its id). */
    StoreResult put(const SessionImage &img);
    /** Read + decode the current image of @p id. */
    StoreResult load(uint64_t id, SessionImage &out);
    StoreResult erase(uint64_t id);

    /** Drop @p id from the manifest but record it as quarantined
     *  (resurrection found the image unusable). */
    StoreResult quarantine(uint64_t id, const std::string &why);

    bool contains(uint64_t id) const;
    std::vector<StoreEntryMeta> entries() const;
    std::vector<QuarantineRecord> quarantined() const;
    StoreCounters counters() const;
    const std::string &dir() const { return dir_; }

  private:
    struct Entry
    {
        std::string file; ///< current image filename (no dir)
        uint64_t bytes = 0;
        uint64_t checksum = 0; ///< fnv64 of the whole file
        StoreEntryMeta meta;
    };

    std::string path(const std::string &name) const;
    std::vector<uint8_t> encodeManifestLocked() const;
    bool decodeManifest(const std::vector<uint8_t> &bytes,
                        std::map<uint64_t, Entry> &out, uint64_t &seq,
                        std::string *why) const;
    StoreResult commitManifestLocked();
    void addQuarantineLocked(const std::string &file, StoreErr err,
                             std::string detail);
    StoreResult validateEntry(const Entry &e, SessionImage *out,
                              std::string *why) const;
    static StoreErr classifyVfs(const std::string &detail);
    static StoreErr fromImageErr(ImageErr err);

    const std::string dir_;
    Vfs &vfs_;

    mutable std::mutex mu_;
    bool opened_ = false;
    std::map<uint64_t, Entry> table_;
    std::vector<QuarantineRecord> quarantine_;
    uint64_t seq_ = 0; ///< monotonic image-file version counter
    uint64_t puts_ = 0;
    uint64_t loads_ = 0;
    uint64_t erases_ = 0;
    uint64_t orphansRemoved_ = 0;
};

} // namespace dise::persist

#endif // DISE_PERSIST_STORE_HH
