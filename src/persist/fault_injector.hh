/**
 * @file
 * Deterministic fault injection for the persistence and scheduling
 * layers.
 *
 * A FaultInjector is armed per call site (file open, write, fsync,
 * rename, scheduler slice boundary) either to fail the exact nth touch
 * of that site or to fail each touch with probability num/den drawn
 * from the repo's seeded xoshiro256** generator — so a chaos battery
 * is exactly repeatable from its seed. The FaultyVfs wrapper
 * (persist/vfs.hh) consults it on every filesystem primitive; the
 * JobScheduler consults it at slice boundaries. Every injected hit is
 * counted so ServerStats can report how much chaos a run absorbed.
 */

#ifndef DISE_PERSIST_FAULT_INJECTOR_HH
#define DISE_PERSIST_FAULT_INJECTOR_HH

#include <cstdint>
#include <mutex>

#include "common/random.hh"

namespace dise::persist {

class FaultInjector
{
  public:
    /** Instrumented call sites. */
    enum class Site : uint8_t {
        Open,   ///< file creation / open for read
        Write,  ///< data write (failure models a short/torn write)
        Fsync,  ///< durability barrier
        Rename, ///< atomic commit rename
        Slice,  ///< scheduler slice boundary
        MigrateExport, ///< extracting a session off its source shard
        MigrateAdopt,  ///< adopting a session onto its target shard
    };
    static constexpr unsigned NumSites = 7;

    static const char *siteName(Site s);

    explicit FaultInjector(uint64_t seed = 0x5eedfau) : rng_(seed) {}

    /** Fail exactly the @p nth next touch of @p s (1-based), once. */
    void
    armNth(Site s, uint64_t nth)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Arm &a = arms_[idx(s)];
        a.nth = a.calls + nth;
        a.num = a.den = 0;
    }

    /** Fail each touch of @p s with probability @p num / @p den. */
    void
    armProbability(Site s, uint32_t num, uint32_t den)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Arm &a = arms_[idx(s)];
        a.nth = 0;
        a.num = num;
        a.den = den ? den : 1;
    }

    void
    disarm()
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (Arm &a : arms_)
            a = Arm{a.calls};
    }

    void
    disarm(Site s)
    {
        std::lock_guard<std::mutex> lk(mu_);
        arms_[idx(s)] = Arm{arms_[idx(s)].calls};
    }

    /** Count a touch of @p s; true when a fault fires on it. */
    bool
    shouldFail(Site s)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Arm &a = arms_[idx(s)];
        ++a.calls;
        bool hit = false;
        if (a.nth && a.calls == a.nth) {
            hit = true;
            a.nth = 0; // one-shot
        } else if (a.den && rng_.below(a.den) < a.num) {
            hit = true;
        }
        if (hit)
            ++injected_;
        return hit;
    }

    /** Faults injected so far, all sites. */
    uint64_t
    injected() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return injected_;
    }

    /** Touches of @p s so far (hit or not). */
    uint64_t
    touches(Site s) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return arms_[idx(s)].calls;
    }

  private:
    struct Arm
    {
        uint64_t calls = 0; ///< touches seen
        uint64_t nth = 0;   ///< absolute touch number to fail (0 = off)
        uint32_t num = 0;   ///< probability numerator (0 = off)
        uint32_t den = 0;
    };

    static constexpr unsigned idx(Site s) { return static_cast<unsigned>(s); }

    mutable std::mutex mu_;
    Rng rng_;
    Arm arms_[NumSites];
    uint64_t injected_ = 0;
};

inline const char *
FaultInjector::siteName(Site s)
{
    switch (s) {
      case Site::Open: return "open";
      case Site::Write: return "write";
      case Site::Fsync: return "fsync";
      case Site::Rename: return "rename";
      case Site::Slice: return "slice";
      case Site::MigrateExport: return "migrate-export";
      case Site::MigrateAdopt: return "migrate-adopt";
    }
    return "?";
}

} // namespace dise::persist

#endif // DISE_PERSIST_FAULT_INJECTOR_HH
