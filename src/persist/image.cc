#include "persist/image.hh"

#include <cstring>

namespace dise::persist {

namespace {

const uint8_t kMagic[8] = {'D', 'I', 'S', 'E', 'I', 'M', 'G', 1};

// ------------------------------------------------------------- encoding

class Writer
{
  public:
    std::vector<uint8_t> bytes;

    void u8(uint8_t v) { bytes.push_back(v); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes.insert(bytes.end(), s.begin(), s.end());
    }
    void
    regId(RegId r)
    {
        u8(static_cast<uint8_t>(r.kind));
        u8(r.idx);
    }
};

/**
 * Bounds-checked little-endian reader. Wire input is untrusted: every
 * read validates the remaining payload first, every enum validates its
 * range, and every count is validated against the bytes that could
 * possibly back it before any allocation happens — a hostile length
 * field cannot drive an over-allocation.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t n) : p_(data), n_(n) {}

    bool ok() const { return ok_; }
    size_t pos() const { return pos_; }
    size_t remaining() const { return n_ - pos_; }
    const std::string &what() const { return what_; }

    uint8_t
    u8()
    {
        if (!need(1, "u8"))
            return 0;
        return p_[pos_++];
    }
    uint32_t
    u32()
    {
        if (!need(4, "u32"))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8, "u64"))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
        return v;
    }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    std::string
    str()
    {
        uint32_t len = u32();
        if (!ok_ || !need(len, "string body"))
            return {};
        std::string s(reinterpret_cast<const char *>(p_ + pos_), len);
        pos_ += len;
        return s;
    }

    RegId
    regId()
    {
        RegId r;
        uint8_t kind = u8();
        r.idx = u8();
        if (kind > static_cast<uint8_t>(RegKind::Dise)) {
            fail("bad RegKind");
            return {};
        }
        r.kind = static_cast<RegKind>(kind);
        return r;
    }

    /** An element count: at least @p minElemBytes must back each. */
    uint32_t
    count(size_t minElemBytes, const char *what)
    {
        uint32_t c = u32();
        if (ok_ && minElemBytes && c > remaining() / minElemBytes) {
            fail(std::string("oversized count for ") + what);
            return 0;
        }
        return c;
    }

    /** Validate enum byte @p v against inclusive max @p maxVal. */
    template <typename E>
    E
    enum8(uint8_t maxVal, const char *what)
    {
        uint8_t v = u8();
        if (ok_ && v > maxVal) {
            fail(std::string("bad ") + what);
            return static_cast<E>(0);
        }
        return static_cast<E>(v);
    }

    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            what_ = why;
        }
    }

  private:
    bool
    need(size_t n, const char *what)
    {
        if (!ok_)
            return false;
        if (n_ - pos_ < n) {
            fail(std::string("truncated ") + what);
            truncated_ = true;
            return false;
        }
        return true;
    }

  public:
    bool truncated() const { return truncated_; }

  private:
    const uint8_t *p_;
    size_t n_;
    size_t pos_ = 0;
    bool ok_ = true;
    bool truncated_ = false;
    std::string what_;
};

void
putPattern(Writer &w, const Pattern &p)
{
    w.u8(p.opclass.has_value());
    w.u8(p.opclass ? static_cast<uint8_t>(*p.opclass) : 0);
    w.u8(p.opcode.has_value());
    w.u8(p.opcode ? static_cast<uint8_t>(*p.opcode) : 0);
    w.u8(p.baseReg.has_value());
    w.regId(p.baseReg.value_or(RegId{}));
    w.u8(p.pc.has_value());
    w.u64(p.pc.value_or(0));
    w.u8(p.codewordId.has_value());
    w.i64(p.codewordId.value_or(0));
}

bool
getPattern(Reader &r, Pattern &p)
{
    if (r.u8())
        p.opclass = static_cast<OpClass>(r.u8());
    else
        r.u8();
    if (r.u8())
        p.opcode = static_cast<Opcode>(r.u8());
    else
        r.u8();
    bool hasBase = r.u8();
    RegId base = r.regId();
    if (hasBase)
        p.baseReg = base;
    bool hasPc = r.u8();
    uint64_t pc = r.u64();
    if (hasPc)
        p.pc = pc;
    bool hasCw = r.u8();
    int64_t cw = r.i64();
    if (hasCw)
        p.codewordId = cw;
    return r.ok();
}

void
putProduction(Writer &w, const Production &p)
{
    w.str(p.name);
    putPattern(w, p.pattern);
    w.u32(static_cast<uint32_t>(p.replacement.size()));
    for (const TemplateInst &ti : p.replacement) {
        w.u8(ti.triggerCopy);
        w.u8(static_cast<uint8_t>(ti.op));
        for (const TRegField *f : {&ti.ra, &ti.rb, &ti.rc}) {
            w.u8(static_cast<uint8_t>(f->kind));
            w.regId(f->lit);
        }
        w.u8(static_cast<uint8_t>(ti.imm.kind));
        w.i64(ti.imm.lit);
    }
}

bool
getProduction(Reader &r, Production &p)
{
    p.name = r.str();
    if (!getPattern(r, p.pattern))
        return false;
    uint32_t n = r.count(20, "replacement sequence");
    p.replacement.resize(r.ok() ? n : 0);
    for (TemplateInst &ti : p.replacement) {
        ti.triggerCopy = r.u8() != 0;
        ti.op = static_cast<Opcode>(r.u8());
        for (TRegField *f : {&ti.ra, &ti.rb, &ti.rc}) {
            f->kind = r.enum8<TRegField::Kind>(
                static_cast<uint8_t>(TRegField::Kind::TrigRc),
                "TRegField kind");
            f->lit = r.regId();
        }
        ti.imm.kind = r.enum8<TImmField::Kind>(
            static_cast<uint8_t>(TImmField::Kind::TrigImm),
            "TImmField kind");
        ti.imm.lit = r.i64();
    }
    return r.ok();
}

} // namespace

const char *
imageErrName(ImageErr err)
{
    switch (err) {
      case ImageErr::None: return "none";
      case ImageErr::Truncated: return "truncated";
      case ImageErr::BadMagic: return "bad-magic";
      case ImageErr::BadVersion: return "bad-version";
      case ImageErr::BadChecksum: return "bad-checksum";
      case ImageErr::Malformed: return "malformed";
    }
    return "?";
}

uint64_t
fnv64(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::vector<uint8_t>
encodeImage(const SessionImage &img)
{
    Writer w;
    w.bytes.insert(w.bytes.end(), kMagic, kMagic + sizeof kMagic);
    w.u32(kImageVersion);

    w.u64(img.id);
    w.str(img.workload);
    w.u8(static_cast<uint8_t>(img.backend));
    w.u8(img.attached);
    w.u8(img.hasTravel);

    w.u32(static_cast<uint32_t>(img.watches.size()));
    for (const WatchSpec &s : img.watches) {
        w.u8(static_cast<uint8_t>(s.kind));
        w.str(s.name);
        w.u64(s.addr);
        w.u32(s.size);
        w.u64(s.length);
        w.u8(s.conditional);
        w.u64(s.predConst);
    }
    w.u32(static_cast<uint32_t>(img.breaks.size()));
    for (const BreakSpec &s : img.breaks) {
        w.u64(s.pc);
        w.str(s.name);
        w.u8(s.conditional);
        w.u64(s.condAddr);
        w.u32(s.condSize);
        w.u64(s.condConst);
    }
    w.u32(static_cast<uint32_t>(img.mutedWatches.size()));
    for (int32_t i : img.mutedWatches)
        w.i32(i);
    w.u32(static_cast<uint32_t>(img.mutedBreaks.size()));
    for (int32_t i : img.mutedBreaks)
        w.i32(i);
    w.u32(static_cast<uint32_t>(img.pokes.size()));
    for (const SessionImage::Poke &p : img.pokes) {
        w.u8(p.isReg);
        w.u32(p.reg);
        w.u64(p.addr);
        w.u32(p.size);
        w.u64(p.value);
    }

    w.u64(img.seed);
    w.str(img.programName);
    w.u32(static_cast<uint32_t>(img.interventions.size()));
    for (const Intervention &iv : img.interventions) {
        w.u8(static_cast<uint8_t>(iv.kind));
        w.u64(iv.time);
        w.u64(iv.appInsts);
        w.u8(iv.atEventPark);
        w.u64(iv.addr);
        w.u32(iv.size);
        w.u64(iv.value);
        w.regId(iv.reg);
        putProduction(w, iv.production);
        w.u32(iv.engineId);
        w.i32(iv.addIndex);
        w.i32(iv.slot);
        w.str(iv.toolName);
        w.u32(static_cast<uint32_t>(iv.toolConfig.size()));
        for (const auto &kv : iv.toolConfig) {
            w.str(kv.first);
            w.str(kv.second);
        }
        w.u32(static_cast<uint32_t>(iv.toolSlots.size()));
        for (int s : iv.toolSlots)
            w.i32(s);
    }
    w.u32(static_cast<uint32_t>(img.marks.size()));
    for (const EventMark &mk : img.marks) {
        w.u8(static_cast<uint8_t>(mk.kind));
        w.i32(mk.index);
        w.u64(mk.time);
        w.u64(mk.appInsts);
        w.u64(mk.pc);
    }

    w.u64(img.time);
    w.u64(img.appInsts);
    w.u64(img.digest);
    w.u32(static_cast<uint32_t>(img.checkpoints.size()));
    for (const CheckpointMeta &cp : img.checkpoints) {
        w.u64(cp.time);
        w.u64(cp.appInsts);
    }
    w.u32(static_cast<uint32_t>(img.toolDigests.size()));
    for (const ToolDigest &td : img.toolDigests) {
        w.str(td.name);
        w.u64(td.digest);
    }

    w.u64(fnv64(w.bytes.data(), w.bytes.size()));
    return w.bytes;
}

ImageErr
decodeImage(const uint8_t *data, size_t n, SessionImage &out,
            std::string *detail)
{
    auto fail = [&](ImageErr err, const std::string &why) {
        if (detail)
            *detail = why;
        return err;
    };

    if (n < sizeof kMagic + 4 + 8)
        return fail(ImageErr::Truncated,
                    "file smaller than the fixed frame");
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        return fail(ImageErr::BadMagic, "magic mismatch");

    // The checksum covers everything before it; verify it before
    // trusting any field beyond the magic.
    uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<uint64_t>(data[n - 8 + i]) << (8 * i);
    if (fnv64(data, n - 8) != stored)
        return fail(ImageErr::BadChecksum, "checksum mismatch");

    Reader r(data + sizeof kMagic, n - sizeof kMagic - 8);
    uint32_t version = r.u32();
    if (version != kImageVersion)
        return fail(ImageErr::BadVersion,
                    "format version " + std::to_string(version) +
                        " (this build reads " +
                        std::to_string(kImageVersion) + ")");

    out = SessionImage{};
    out.id = r.u64();
    out.workload = r.str();
    out.backend = r.enum8<BackendKind>(
        static_cast<uint8_t>(BackendKind::Rewrite), "backend");
    out.attached = r.u8() != 0;
    out.hasTravel = r.u8() != 0;

    uint32_t nw = r.count(30, "watch list");
    out.watches.resize(r.ok() ? nw : 0);
    for (WatchSpec &s : out.watches) {
        s.kind = r.enum8<WatchKind>(
            static_cast<uint8_t>(WatchKind::Range), "watch kind");
        s.name = r.str();
        s.addr = r.u64();
        s.size = r.u32();
        s.length = r.u64();
        s.conditional = r.u8() != 0;
        s.predConst = r.u64();
    }
    uint32_t nb = r.count(33, "break list");
    out.breaks.resize(r.ok() ? nb : 0);
    for (BreakSpec &s : out.breaks) {
        s.pc = r.u64();
        s.name = r.str();
        s.conditional = r.u8() != 0;
        s.condAddr = r.u64();
        s.condSize = r.u32();
        s.condConst = r.u64();
    }
    uint32_t nmw = r.count(4, "muted watch list");
    out.mutedWatches.resize(r.ok() ? nmw : 0);
    for (int32_t &i : out.mutedWatches)
        i = r.i32();
    uint32_t nmb = r.count(4, "muted break list");
    out.mutedBreaks.resize(r.ok() ? nmb : 0);
    for (int32_t &i : out.mutedBreaks)
        i = r.i32();
    uint32_t np = r.count(25, "poke list");
    out.pokes.resize(r.ok() ? np : 0);
    for (SessionImage::Poke &p : out.pokes) {
        p.isReg = r.u8() != 0;
        p.reg = r.u32();
        p.addr = r.u64();
        p.size = r.u32();
        p.value = r.u64();
    }

    out.seed = r.u64();
    out.programName = r.str();
    uint32_t ni = r.count(60, "intervention journal");
    out.interventions.resize(r.ok() ? ni : 0);
    for (Intervention &iv : out.interventions) {
        iv.kind = r.enum8<InterventionKind>(
            static_cast<uint8_t>(InterventionKind::ToolDisable),
            "intervention kind");
        iv.time = r.u64();
        iv.appInsts = r.u64();
        iv.atEventPark = r.u8() != 0;
        iv.addr = r.u64();
        iv.size = r.u32();
        iv.value = r.u64();
        iv.reg = r.regId();
        if (!getProduction(r, iv.production))
            break;
        iv.engineId = r.u32();
        iv.addIndex = r.i32();
        iv.slot = r.i32();
        iv.toolName = r.str();
        uint32_t ntc = r.count(8, "tool config");
        iv.toolConfig.resize(r.ok() ? ntc : 0);
        for (auto &kv : iv.toolConfig) {
            kv.first = r.str();
            kv.second = r.str();
        }
        uint32_t nts = r.count(4, "tool slot list");
        iv.toolSlots.resize(r.ok() ? nts : 0);
        for (int &s : iv.toolSlots)
            s = r.i32();
    }
    uint32_t nm = r.count(29, "event timeline");
    out.marks.resize(r.ok() ? nm : 0);
    for (EventMark &mk : out.marks) {
        mk.kind = r.enum8<EventKind>(
            static_cast<uint8_t>(EventKind::Protection), "event kind");
        mk.index = r.i32();
        mk.time = r.u64();
        mk.appInsts = r.u64();
        mk.pc = r.u64();
    }

    out.time = r.u64();
    out.appInsts = r.u64();
    out.digest = r.u64();
    uint32_t nc = r.count(16, "checkpoint chain");
    out.checkpoints.resize(r.ok() ? nc : 0);
    for (CheckpointMeta &cp : out.checkpoints) {
        cp.time = r.u64();
        cp.appInsts = r.u64();
    }
    uint32_t ntd = r.count(12, "tool digest list");
    out.toolDigests.resize(r.ok() ? ntd : 0);
    for (ToolDigest &td : out.toolDigests) {
        td.name = r.str();
        td.digest = r.u64();
    }

    if (!r.ok())
        return fail(r.truncated() ? ImageErr::Truncated
                                  : ImageErr::Malformed,
                    r.what());
    if (r.remaining() != 0)
        return fail(ImageErr::Malformed,
                    std::to_string(r.remaining()) +
                        " trailing bytes after the payload");
    return ImageErr::None;
}

} // namespace dise::persist
