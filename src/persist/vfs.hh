/**
 * @file
 * The injectable filesystem interface of the persistence layer.
 *
 * SessionStore performs every filesystem operation through this
 * interface so tests can substitute a FaultyVfs that forces short
 * writes, fsync failures, failed renames, and unreadable files at
 * exact, seeded call sites — proving the store's crash-consistency
 * story without ptrace tricks or real disk errors.
 *
 * The primitives are whole-file: writeFile() is create + write + fsync
 * + close, so the store's atomicity protocol (write a temp file, then
 * rename over the target) composes from two calls with well-defined
 * failure points. A failed writeFile may leave a partial temp file
 * behind (exactly like a real crash mid-write); rename is all or
 * nothing, as POSIX guarantees.
 */

#ifndef DISE_PERSIST_VFS_HH
#define DISE_PERSIST_VFS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persist/fault_injector.hh"

namespace dise::persist {

class Vfs
{
  public:
    virtual ~Vfs() = default;

    /** mkdir -p. True when the directory exists afterwards. */
    virtual bool mkdirs(const std::string &dir, std::string *err) = 0;
    /** Create/truncate @p path, write all @p n bytes, fsync, close. */
    virtual bool writeFile(const std::string &path, const uint8_t *data,
                           size_t n, std::string *err) = 0;
    virtual bool readFile(const std::string &path,
                          std::vector<uint8_t> &out, std::string *err) = 0;
    /** Atomic replace (POSIX rename semantics). */
    virtual bool rename(const std::string &from, const std::string &to,
                        std::string *err) = 0;
    virtual bool remove(const std::string &path) = 0;
    /** Entry names (not paths) in @p dir, unsorted; "." ".." omitted. */
    virtual bool list(const std::string &dir,
                      std::vector<std::string> &names) = 0;
    virtual bool exists(const std::string &path) = 0;
};

/** The real POSIX filesystem. */
class RealVfs : public Vfs
{
  public:
    bool mkdirs(const std::string &dir, std::string *err) override;
    bool writeFile(const std::string &path, const uint8_t *data,
                   size_t n, std::string *err) override;
    bool readFile(const std::string &path, std::vector<uint8_t> &out,
                  std::string *err) override;
    bool rename(const std::string &from, const std::string &to,
                std::string *err) override;
    bool remove(const std::string &path) override;
    bool list(const std::string &dir,
              std::vector<std::string> &names) override;
    bool exists(const std::string &path) override;
};

/**
 * A Vfs decorator that consults a FaultInjector on every primitive.
 * Injected failures have honest side effects: a Write fault leaves a
 * torn half-written file behind (what a crash or ENOSPC mid-write
 * leaves), an Fsync fault leaves the full data written but reports
 * failure (durability unknown), and a Rename fault leaves the target
 * untouched. Every injected error message starts with "injected" so
 * callers can classify it.
 */
class FaultyVfs : public Vfs
{
  public:
    FaultyVfs(Vfs &base, FaultInjector &faults)
        : base_(base), faults_(faults)
    {
    }

    bool mkdirs(const std::string &dir, std::string *err) override;
    bool writeFile(const std::string &path, const uint8_t *data,
                   size_t n, std::string *err) override;
    bool readFile(const std::string &path, std::vector<uint8_t> &out,
                  std::string *err) override;
    bool rename(const std::string &from, const std::string &to,
                std::string *err) override;
    bool remove(const std::string &path) override;
    bool list(const std::string &dir,
              std::vector<std::string> &names) override;
    bool exists(const std::string &path) override;

  private:
    Vfs &base_;
    FaultInjector &faults_;
};

} // namespace dise::persist

#endif // DISE_PERSIST_VFS_HH
