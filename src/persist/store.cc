#include "persist/store.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hh"

namespace dise::persist {

namespace {

const uint8_t kManMagic[8] = {'D', 'I', 'S', 'E', 'M', 'A', 'N', 1};
constexpr uint32_t kManVersion = 1;
constexpr const char *kManifest = "manifest.bin";

void
putU32(std::vector<uint8_t> &b, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &b, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putStr(std::vector<uint8_t> &b, const std::string &s)
{
    putU32(b, static_cast<uint32_t>(s.size()));
    b.insert(b.end(), s.begin(), s.end());
}

/** Minimal bounds-checked cursor for the manifest (untrusted input). */
struct Cur
{
    const uint8_t *p;
    size_t n;
    size_t pos = 0;
    bool ok = true;

    bool
    need(size_t k)
    {
        if (ok && n - pos < k)
            ok = false;
        return ok;
    }
    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[pos++]) << (8 * i);
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[pos++]) << (8 * i);
        return v;
    }
    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p[pos++];
    }
    std::string
    str()
    {
        uint32_t len = u32();
        if (!ok || !need(len))
            return {};
        std::string s(reinterpret_cast<const char *>(p + pos), len);
        pos += len;
        return s;
    }
};

/** Parse "sess-<id>.v<ver>.img"; false for anything else. */
bool
parseImageName(const std::string &name, uint64_t &id, uint64_t &ver)
{
    if (name.rfind("sess-", 0) != 0)
        return false;
    if (name.size() < 9 || name.compare(name.size() - 4, 4, ".img") != 0)
        return false;
    size_t v = name.rfind(".v", name.size() - 4);
    if (v == std::string::npos || v < 5)
        return false;
    char *end = nullptr;
    id = std::strtoull(name.c_str() + 5, &end, 10);
    if (!end || *end != '.')
        return false;
    ver = std::strtoull(name.c_str() + v + 2, &end, 10);
    return end && std::strcmp(end, ".img") == 0;
}

} // namespace

const char *
storeErrName(StoreErr err)
{
    switch (err) {
      case StoreErr::None: return "none";
      case StoreErr::Io: return "io";
      case StoreErr::Injected: return "injected-fault";
      case StoreErr::Truncated: return "truncated";
      case StoreErr::BadMagic: return "bad-magic";
      case StoreErr::BadVersion: return "bad-version";
      case StoreErr::BadChecksum: return "bad-checksum";
      case StoreErr::Malformed: return "malformed";
      case StoreErr::BadManifest: return "bad-manifest";
      case StoreErr::DuplicateId: return "duplicate-id";
      case StoreErr::Missing: return "missing";
    }
    return "?";
}

SessionStore::SessionStore(std::string dir, Vfs &vfs)
    : dir_(std::move(dir)), vfs_(vfs)
{
}

std::string
SessionStore::path(const std::string &name) const
{
    return dir_ + "/" + name;
}

StoreErr
SessionStore::classifyVfs(const std::string &detail)
{
    return detail.rfind("injected", 0) == 0 ? StoreErr::Injected
                                            : StoreErr::Io;
}

StoreErr
SessionStore::fromImageErr(ImageErr err)
{
    switch (err) {
      case ImageErr::None: return StoreErr::None;
      case ImageErr::Truncated: return StoreErr::Truncated;
      case ImageErr::BadMagic: return StoreErr::BadMagic;
      case ImageErr::BadVersion: return StoreErr::BadVersion;
      case ImageErr::BadChecksum: return StoreErr::BadChecksum;
      case ImageErr::Malformed: return StoreErr::Malformed;
    }
    return StoreErr::Malformed;
}

void
SessionStore::addQuarantineLocked(const std::string &file, StoreErr err,
                                  std::string detail)
{
    quarantine_.push_back({file, err, std::move(detail)});
}

std::vector<uint8_t>
SessionStore::encodeManifestLocked() const
{
    std::vector<uint8_t> b;
    b.insert(b.end(), kManMagic, kManMagic + sizeof kManMagic);
    putU32(b, kManVersion);
    putU64(b, seq_);
    putU32(b, static_cast<uint32_t>(table_.size()));
    for (const auto &[id, e] : table_) {
        putU64(b, id);
        putStr(b, e.file);
        putU64(b, e.bytes);
        putU64(b, e.checksum);
        putStr(b, e.meta.workload);
        b.push_back(static_cast<uint8_t>(e.meta.backend));
        putU64(b, e.meta.appInsts);
        putU64(b, e.meta.digest);
    }
    putU64(b, fnv64(b.data(), b.size()));
    return b;
}

bool
SessionStore::decodeManifest(const std::vector<uint8_t> &bytes,
                             std::map<uint64_t, Entry> &out,
                             uint64_t &seq, std::string *why) const
{
    auto fail = [&](const std::string &w) {
        if (why)
            *why = w;
        return false;
    };
    if (bytes.size() < sizeof kManMagic + 4 + 8)
        return fail("manifest smaller than the fixed frame");
    if (std::memcmp(bytes.data(), kManMagic, sizeof kManMagic) != 0)
        return fail("manifest magic mismatch");
    uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<uint64_t>(bytes[bytes.size() - 8 + i])
                  << (8 * i);
    if (fnv64(bytes.data(), bytes.size() - 8) != stored)
        return fail("manifest checksum mismatch");

    Cur c{bytes.data() + sizeof kManMagic,
          bytes.size() - sizeof kManMagic - 8};
    uint32_t version = c.u32();
    if (version != kManVersion)
        return fail("manifest version " + std::to_string(version));
    seq = c.u64();
    uint32_t count = c.u32();
    if (!c.ok || count > (c.n - c.pos) / 38)
        return fail("manifest count field invalid");
    for (uint32_t i = 0; i < count && c.ok; ++i) {
        Entry e;
        uint64_t id = c.u64();
        e.file = c.str();
        e.bytes = c.u64();
        e.checksum = c.u64();
        e.meta.id = id;
        e.meta.workload = c.str();
        uint8_t backend = c.u8();
        if (backend > static_cast<uint8_t>(BackendKind::Rewrite))
            return fail("manifest entry has a bad backend byte");
        e.meta.backend = static_cast<BackendKind>(backend);
        e.meta.appInsts = c.u64();
        e.meta.digest = c.u64();
        e.meta.bytes = e.bytes;
        if (!c.ok)
            break;
        if (out.count(id))
            return fail("duplicate session id " + std::to_string(id) +
                        " in manifest");
        out.emplace(id, std::move(e));
    }
    if (!c.ok || c.pos != c.n)
        return fail("manifest body truncated or oversized");
    return true;
}

StoreResult
SessionStore::validateEntry(const Entry &e, SessionImage *out,
                            std::string *why) const
{
    std::vector<uint8_t> bytes;
    std::string err;
    if (!vfs_.readFile(path(e.file), bytes, &err))
        return StoreResult::failure(classifyVfs(err), err);
    if (bytes.size() != e.bytes)
        return StoreResult::failure(
            StoreErr::Truncated,
            e.file + ": " + std::to_string(bytes.size()) +
                " bytes on disk, manifest says " +
                std::to_string(e.bytes));
    if (fnv64(bytes.data(), bytes.size()) != e.checksum)
        return StoreResult::failure(StoreErr::BadChecksum,
                                    e.file +
                                        ": file checksum mismatch "
                                        "against the manifest");
    SessionImage img;
    std::string detail;
    ImageErr ie = decodeImage(bytes, img, &detail);
    if (ie != ImageErr::None)
        return StoreResult::failure(fromImageErr(ie),
                                    e.file + ": " + detail);
    if (img.id != e.meta.id)
        return StoreResult::failure(
            StoreErr::Malformed,
            e.file + ": image claims session id " +
                std::to_string(img.id) + ", manifest says " +
                std::to_string(e.meta.id));
    if (out)
        *out = std::move(img);
    if (why)
        *why = detail;
    return {};
}

StoreResult
SessionStore::open()
{
    TRACE_SPAN("store", "store.open");
    std::lock_guard<std::mutex> lk(mu_);
    table_.clear();
    quarantine_.clear();

    std::string err;
    if (!vfs_.mkdirs(dir_, &err))
        return StoreResult::failure(classifyVfs(err), err);
    opened_ = true;

    bool salvage = false;
    if (vfs_.exists(path(kManifest))) {
        std::vector<uint8_t> bytes;
        std::string why;
        if (!vfs_.readFile(path(kManifest), bytes, &why) ||
            !decodeManifest(bytes, table_, seq_, &why)) {
            addQuarantineLocked(kManifest, StoreErr::BadManifest, why);
            table_.clear();
            salvage = true;
        }
    } else {
        // No manifest but image files on disk: the commit point itself
        // was lost (deleted, or a crash before the very first commit).
        // That is a damaged store, not a fresh one — without this check
        // the GC below would collect every image as an orphan.
        std::vector<std::string> present;
        vfs_.list(dir_, present);
        for (const std::string &name : present) {
            uint64_t id = 0, ver = 0;
            if (parseImageName(name, id, ver)) {
                addQuarantineLocked(
                    kManifest, StoreErr::BadManifest,
                    "manifest missing with session images on disk");
                salvage = true;
                break;
            }
        }
    }

    if (!salvage) {
        // Validate every referenced image; rot quarantines the entry,
        // it never aborts recovery.
        for (auto it = table_.begin(); it != table_.end();) {
            StoreResult res = validateEntry(it->second, nullptr, nullptr);
            if (res.ok) {
                ++it;
            } else {
                addQuarantineLocked(it->second.file, res.err, res.detail);
                it = table_.erase(it);
            }
        }
    }

    std::vector<std::string> names;
    vfs_.list(dir_, names);

    if (salvage) {
        // No trustworthy manifest: adopt the newest valid image of each
        // session id found on disk, quarantine everything unreadable.
        std::map<uint64_t, std::pair<uint64_t, Entry>> best; // id -> (ver, e)
        for (const std::string &name : names) {
            uint64_t id = 0, ver = 0;
            if (!parseImageName(name, id, ver))
                continue;
            std::vector<uint8_t> bytes;
            std::string why;
            if (!vfs_.readFile(path(name), bytes, &why)) {
                addQuarantineLocked(name, classifyVfs(why), why);
                continue;
            }
            SessionImage img;
            ImageErr ie = decodeImage(bytes, img, &why);
            if (ie != ImageErr::None) {
                addQuarantineLocked(name, fromImageErr(ie),
                                    name + ": " + why);
                continue;
            }
            if (img.id != id) {
                addQuarantineLocked(
                    name, StoreErr::Malformed,
                    name + ": image claims session id " +
                        std::to_string(img.id));
                continue;
            }
            Entry e;
            e.file = name;
            e.bytes = bytes.size();
            e.checksum = fnv64(bytes.data(), bytes.size());
            e.meta = {img.id, img.workload, img.backend, img.appInsts,
                      img.digest, bytes.size()};
            auto it = best.find(id);
            if (it == best.end() || ver > it->second.first) {
                if (it != best.end())
                    addQuarantineLocked(
                        it->second.second.file, StoreErr::DuplicateId,
                        "superseded duplicate of session " +
                            std::to_string(id));
                best[id] = {ver, std::move(e)};
            } else {
                addQuarantineLocked(name, StoreErr::DuplicateId,
                                    "superseded duplicate of session " +
                                        std::to_string(id));
            }
        }
        for (auto &[id, pe] : best)
            table_.emplace(id, std::move(pe.second));
        commitManifestLocked(); // best effort: rebuild the commit point
    }

    // GC: temp residue always goes; unreferenced image files are
    // orphans of a crash between manifest commit and old-file removal.
    // Quarantined files stay on disk for the operator.
    for (const std::string &name : names) {
        if (name == kManifest)
            continue;
        bool quarantined = false;
        for (const QuarantineRecord &q : quarantine_)
            if (q.file == name)
                quarantined = true;
        if (quarantined)
            continue;
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            if (vfs_.remove(path(name)))
                ++orphansRemoved_;
            continue;
        }
        uint64_t id = 0, ver = 0;
        if (!parseImageName(name, id, ver))
            continue;
        seq_ = std::max(seq_, ver);
        auto it = table_.find(id);
        if (it == table_.end() || it->second.file != name) {
            if (vfs_.remove(path(name)))
                ++orphansRemoved_;
        }
    }
    return {};
}

StoreResult
SessionStore::commitManifestLocked()
{
    std::vector<uint8_t> bytes = encodeManifestLocked();
    std::string tmp = path(std::string(kManifest) + ".tmp");
    std::string err;
    if (!vfs_.writeFile(tmp, bytes.data(), bytes.size(), &err)) {
        vfs_.remove(tmp);
        return StoreResult::failure(classifyVfs(err), err);
    }
    if (!vfs_.rename(tmp, path(kManifest), &err)) {
        vfs_.remove(tmp);
        return StoreResult::failure(classifyVfs(err), err);
    }
    return {};
}

StoreResult
SessionStore::put(const SessionImage &img)
{
    TRACE_SPAN("store", "store.put");
    std::lock_guard<std::mutex> lk(mu_);
    if (!opened_)
        return StoreResult::failure(StoreErr::Io, "store not opened");

    std::vector<uint8_t> bytes = encodeImage(img);
    std::string file = "sess-" + std::to_string(img.id) + ".v" +
                       std::to_string(++seq_) + ".img";
    std::string tmp = file + ".tmp";

    std::string err;
    if (!vfs_.writeFile(path(tmp), bytes.data(), bytes.size(), &err)) {
        vfs_.remove(path(tmp));
        return StoreResult::failure(classifyVfs(err), err);
    }
    if (!vfs_.rename(path(tmp), path(file), &err)) {
        vfs_.remove(path(tmp));
        return StoreResult::failure(classifyVfs(err), err);
    }

    Entry e;
    e.file = file;
    e.bytes = bytes.size();
    e.checksum = fnv64(bytes.data(), bytes.size());
    e.meta = {img.id, img.workload, img.backend, img.appInsts,
              img.digest, bytes.size()};

    auto it = table_.find(img.id);
    bool hadOld = it != table_.end();
    Entry old;
    if (hadOld)
        old = it->second;
    table_[img.id] = std::move(e);

    StoreResult committed = commitManifestLocked();
    if (!committed.ok) {
        // Roll the in-memory table back and drop the uncommitted
        // image: the store still describes the last durable state.
        if (hadOld)
            table_[img.id] = std::move(old);
        else
            table_.erase(img.id);
        vfs_.remove(path(file));
        return committed;
    }
    if (hadOld && old.file != file)
        vfs_.remove(path(old.file)); // best effort; open() GCs orphans
    ++puts_;
    return {};
}

StoreResult
SessionStore::load(uint64_t id, SessionImage &out)
{
    TRACE_SPAN("store", "store.load");
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(id);
    if (it == table_.end())
        return StoreResult::failure(StoreErr::Missing,
                                    "no session " + std::to_string(id) +
                                        " in the store");
    StoreResult res = validateEntry(it->second, &out, nullptr);
    if (res.ok)
        ++loads_;
    return res;
}

StoreResult
SessionStore::erase(uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(id);
    if (it == table_.end())
        return StoreResult::failure(StoreErr::Missing,
                                    "no session " + std::to_string(id) +
                                        " in the store");
    Entry old = it->second;
    table_.erase(it);
    StoreResult committed = commitManifestLocked();
    if (!committed.ok) {
        table_.emplace(id, std::move(old));
        return committed;
    }
    vfs_.remove(path(old.file));
    ++erases_;
    return {};
}

StoreResult
SessionStore::quarantine(uint64_t id, const std::string &why)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(id);
    if (it == table_.end())
        return StoreResult::failure(StoreErr::Missing,
                                    "no session " + std::to_string(id) +
                                        " in the store");
    addQuarantineLocked(it->second.file, StoreErr::Malformed, why);
    table_.erase(it);
    commitManifestLocked(); // best effort; the file stays on disk
    return {};
}

bool
SessionStore::contains(uint64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return table_.count(id) > 0;
}

std::vector<StoreEntryMeta>
SessionStore::entries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<StoreEntryMeta> out;
    out.reserve(table_.size());
    for (const auto &[id, e] : table_)
        out.push_back(e.meta);
    return out;
}

std::vector<QuarantineRecord>
SessionStore::quarantined() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return quarantine_;
}

StoreCounters
SessionStore::counters() const
{
    std::lock_guard<std::mutex> lk(mu_);
    StoreCounters c;
    c.images = table_.size();
    for (const auto &[id, e] : table_)
        c.bytes += e.bytes;
    c.puts = puts_;
    c.loads = loads_;
    c.erases = erases_;
    c.quarantined = quarantine_.size();
    c.orphansRemoved = orphansRemoved_;
    return c;
}

} // namespace dise::persist
