#include "persist/vfs.hh"

#include <cerrno>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"

#include <dirent.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace dise::persist {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
}

std::string
errnoStr(const std::string &op, const std::string &path)
{
    return op + " " + path + ": " + std::strerror(errno);
}

} // namespace

// -------------------------------------------------------------- RealVfs

bool
RealVfs::mkdirs(const std::string &dir, std::string *err)
{
    std::string path;
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t next = dir.find('/', pos);
        if (next == std::string::npos)
            next = dir.size();
        path = dir.substr(0, next);
        pos = next + 1;
        if (path.empty())
            continue;
        if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
            setErr(err, errnoStr("mkdir", path));
            return false;
        }
    }
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        setErr(err, "not a directory: " + dir);
        return false;
    }
    return true;
}

bool
RealVfs::writeFile(const std::string &path, const uint8_t *data,
                   size_t n, std::string *err)
{
    TRACE_SPAN("store", "vfs.write");
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setErr(err, errnoStr("open", path));
        return false;
    }
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, errnoStr("write", path));
            ::close(fd);
            return false;
        }
        off += static_cast<size_t>(w);
    }
    {
        TRACE_SPAN("store", "vfs.fsync");
        uint64_t t0 = obs::nowNs();
        int rc = ::fsync(fd);
        obs::metrics().storeFsyncUs.observe(obs::usSince(t0));
        if (rc != 0) {
            setErr(err, errnoStr("fsync", path));
            ::close(fd);
            return false;
        }
    }
    if (::close(fd) != 0) {
        setErr(err, errnoStr("close", path));
        return false;
    }
    return true;
}

bool
RealVfs::readFile(const std::string &path, std::vector<uint8_t> &out,
                  std::string *err)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setErr(err, errnoStr("open", path));
        return false;
    }
    out.clear();
    uint8_t buf[1 << 16];
    for (;;) {
        ssize_t r = ::read(fd, buf, sizeof buf);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, errnoStr("read", path));
            ::close(fd);
            return false;
        }
        if (r == 0)
            break;
        out.insert(out.end(), buf, buf + r);
    }
    ::close(fd);
    return true;
}

bool
RealVfs::rename(const std::string &from, const std::string &to,
                std::string *err)
{
    TRACE_SPAN("store", "vfs.rename");
    if (::rename(from.c_str(), to.c_str()) != 0) {
        setErr(err, errnoStr("rename", from + " -> " + to));
        return false;
    }
    return true;
}

bool
RealVfs::remove(const std::string &path)
{
    return ::unlink(path.c_str()) == 0;
}

bool
RealVfs::list(const std::string &dir, std::vector<std::string> &names)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return false;
    names.clear();
    while (struct dirent *de = ::readdir(d)) {
        std::string name = de->d_name;
        if (name == "." || name == "..")
            continue;
        names.push_back(std::move(name));
    }
    ::closedir(d);
    return true;
}

bool
RealVfs::exists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

// ------------------------------------------------------------- FaultyVfs

bool
FaultyVfs::mkdirs(const std::string &dir, std::string *err)
{
    if (faults_.shouldFail(FaultInjector::Site::Open)) {
        setErr(err, "injected fault: mkdir " + dir);
        return false;
    }
    return base_.mkdirs(dir, err);
}

bool
FaultyVfs::writeFile(const std::string &path, const uint8_t *data,
                     size_t n, std::string *err)
{
    if (faults_.shouldFail(FaultInjector::Site::Open)) {
        setErr(err, "injected fault: open " + path);
        return false;
    }
    if (faults_.shouldFail(FaultInjector::Site::Write)) {
        // A torn file: the honest residue of a crash (or ENOSPC)
        // mid-write. The store's recovery path must survive finding it.
        base_.writeFile(path, data, n / 2, nullptr);
        setErr(err, "injected fault: short write " + path);
        return false;
    }
    if (faults_.shouldFail(FaultInjector::Site::Fsync)) {
        // Data fully written but durability unknown: report failure.
        base_.writeFile(path, data, n, nullptr);
        setErr(err, "injected fault: fsync " + path);
        return false;
    }
    return base_.writeFile(path, data, n, err);
}

bool
FaultyVfs::readFile(const std::string &path, std::vector<uint8_t> &out,
                    std::string *err)
{
    if (faults_.shouldFail(FaultInjector::Site::Open)) {
        setErr(err, "injected fault: open " + path);
        return false;
    }
    return base_.readFile(path, out, err);
}

bool
FaultyVfs::rename(const std::string &from, const std::string &to,
                  std::string *err)
{
    if (faults_.shouldFail(FaultInjector::Site::Rename)) {
        setErr(err, "injected fault: rename " + from + " -> " + to);
        return false;
    }
    return base_.rename(from, to, err);
}

bool
FaultyVfs::remove(const std::string &path)
{
    return base_.remove(path);
}

bool
FaultyVfs::list(const std::string &dir, std::vector<std::string> &names)
{
    return base_.list(dir, names);
}

bool
FaultyVfs::exists(const std::string &path)
{
    return base_.exists(path);
}

} // namespace dise::persist
