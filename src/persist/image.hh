/**
 * @file
 * The serialized form of a debug session: everything needed to rebuild
 * the session's machinery from the program image and deterministically
 * replay it back to the exact position it was persisted at.
 *
 * Per the paper's replay model, a session IS its nondeterministic
 * inputs: the workload identity, the spec set (watchpoints,
 * breakpoints, mute sets, initial-state pokes — which shape the
 * instrumented µop stream), the ReplayLog (seed, time-stamped
 * interventions including DISE production-table mutations, and the
 * discovered event timeline), plus the position to seek to. Checkpoint
 * pages are deliberately NOT serialized: the chain's positions are
 * deterministic functions of the travel history, so resurrection
 * re-takes bit-identical checkpoints during the seek replay and the
 * recorded (time, appInsts) pairs become an integrity check instead of
 * megabytes of page data — the compact-trace tradeoff.
 *
 * The binary encoding is versioned (magic + format version), bounded
 * (every count is validated against the remaining payload before
 * allocation), and checksummed (FNV-1a 64 over everything before the
 * trailing checksum), so a torn or bit-flipped file is detected and
 * quarantined rather than parsed.
 */

#ifndef DISE_PERSIST_IMAGE_HH
#define DISE_PERSIST_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "debug/backend.hh"
#include "debug/debugger.hh"
#include "debug/watch.hh"
#include "replay/replay_log.hh"

namespace dise::persist {

/** Position of one checkpoint of the chain (no page data). */
struct CheckpointMeta
{
    uint64_t time = 0;
    uint64_t appInsts = 0;

    bool operator==(const CheckpointMeta &) const = default;
};

/** Integrity anchor for one enabled debug tool (src/tools/): the
 *  FNV-1a digest of its serialized state at persist time. Tool state
 *  itself is NOT serialized — the seek replay re-derives it from the
 *  ToolEnable interventions and the deterministic µop stream, and the
 *  digest proves the re-derivation is bit-identical. */
struct ToolDigest
{
    std::string name;
    uint64_t digest = 0;

    bool operator==(const ToolDigest &) const = default;
};

/** One serializable session. */
struct SessionImage
{
    uint64_t id = 0;
    std::string workload;
    BackendKind backend = BackendKind::Dise;
    /** The session had attached (machinery installed, target loaded). */
    bool attached = false;
    /** The session had a time-travel timeline (ran at least one
     *  checkpointed verb). */
    bool hasTravel = false;

    // Spec set (shapes the instrumented stream; install order matters).
    std::vector<WatchSpec> watches;
    std::vector<BreakSpec> breaks;
    std::vector<int32_t> mutedWatches;
    std::vector<int32_t> mutedBreaks;

    /** Initial-state pokes (applied between load and prime). */
    struct Poke
    {
        bool isReg = false;
        uint32_t reg = 0;
        Addr addr = 0;
        uint32_t size = 8;
        uint64_t value = 0;
    };
    std::vector<Poke> pokes;

    // Replay log.
    uint64_t seed = 0;
    std::string programName;
    std::vector<Intervention> interventions;
    std::vector<EventMark> marks;

    // Position + integrity anchors.
    uint64_t time = 0;
    uint64_t appInsts = 0;
    /** stateDigest of the live session at persist time. */
    uint64_t digest = 0;
    std::vector<CheckpointMeta> checkpoints;
    /** Per-tool state digests (enable order). */
    std::vector<ToolDigest> toolDigests;
};

/** Typed decode failures (mapped to store quarantine reasons). */
enum class ImageErr : uint8_t {
    None,
    Truncated,   ///< ran out of bytes mid-field
    BadMagic,
    BadVersion,  ///< format version this build cannot read
    BadChecksum, ///< bit flip / torn tail
    Malformed,   ///< structurally invalid (bad enum, oversized count)
};

const char *imageErrName(ImageErr err);

/** v2 added tool-enable/disable interventions and tool digests. */
constexpr uint32_t kImageVersion = 2;

/** FNV-1a 64 (the persistence layer's integrity hash). */
uint64_t fnv64(const uint8_t *data, size_t n);

std::vector<uint8_t> encodeImage(const SessionImage &img);
ImageErr decodeImage(const uint8_t *data, size_t n, SessionImage &out,
                     std::string *detail = nullptr);

inline ImageErr
decodeImage(const std::vector<uint8_t> &bytes, SessionImage &out,
            std::string *detail = nullptr)
{
    return decodeImage(bytes.data(), bytes.size(), out, detail);
}

} // namespace dise::persist

#endif // DISE_PERSIST_IMAGE_HH
