/**
 * @file
 * Program loader: copies a Program image into functional memory and
 * initializes architectural state (entry PC, stack pointer).
 */

#ifndef DISE_CPU_LOADER_HH
#define DISE_CPU_LOADER_HH

#include "asm/program.hh"
#include "cpu/arch_state.hh"
#include "mem/mainmem.hh"

namespace dise {

/** Default memory map (all below 2^26 so la/li pairs reach them). */
namespace layout {
constexpr Addr TextBase = 0x0100'0000;
constexpr Addr DebuggerTextBase = 0x0180'0000; ///< appended handler code
constexpr Addr DataBase = 0x0200'0000;
constexpr Addr HeapBase = 0x0280'0000;
constexpr Addr DebuggerDataBase = 0x0300'0000; ///< appended dseg
constexpr Addr StackTop = 0x03f0'0000;
} // namespace layout

struct LoadInfo
{
    Addr entry = 0;
    Addr stackTop = 0;
};

/** Load @p prog, set pc/sp. Returns entry/stack info. */
LoadInfo loadProgram(MainMemory &mem, ArchState &arch, const Program &prog,
                     Addr stackTop = layout::StackTop);

} // namespace dise

#endif // DISE_CPU_LOADER_HH
