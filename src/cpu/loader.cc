#include "cpu/loader.hh"

namespace dise {

LoadInfo
loadProgram(MainMemory &mem, ArchState &arch, const Program &prog,
            Addr stackTop)
{
    for (const auto &seg : prog.segments)
        if (!seg.bytes.empty())
            mem.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());

    arch.pc = prog.entry;
    arch.write(reg::sp, stackTop);
    return {prog.entry, stackTop};
}

} // namespace dise
