#include "cpu/alu.hh"

#include "common/logging.hh"

namespace dise {

uint64_t
aluCompute(Opcode op, uint64_t a, uint64_t b)
{
    switch (op) {
      case Opcode::ADDQ: case Opcode::ADDQ_I:
        return a + b;
      case Opcode::SUBQ: case Opcode::SUBQ_I:
        return a - b;
      case Opcode::MULQ: case Opcode::MULQ_I:
        return a * b;
      case Opcode::AND: case Opcode::AND_I:
        return a & b;
      case Opcode::BIS: case Opcode::BIS_I:
        return a | b;
      case Opcode::XOR: case Opcode::XOR_I:
        return a ^ b;
      case Opcode::BIC: case Opcode::BIC_I:
        return a & ~b;
      case Opcode::SLL: case Opcode::SLL_I:
        return a << (b & 63);
      case Opcode::SRL: case Opcode::SRL_I:
        return a >> (b & 63);
      case Opcode::SRA: case Opcode::SRA_I:
        return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
      case Opcode::CMPEQ: case Opcode::CMPEQ_I:
        return a == b;
      case Opcode::CMPLT: case Opcode::CMPLT_I:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b);
      case Opcode::CMPLE: case Opcode::CMPLE_I:
        return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
      case Opcode::CMPULT: case Opcode::CMPULT_I:
        return a < b;
      case Opcode::CMPULE: case Opcode::CMPULE_I:
        return a <= b;
      default:
        panic("aluCompute: not an ALU opcode: ", opName(op));
    }
}

bool
branchTaken(Opcode op, uint64_t condVal)
{
    int64_t sv = static_cast<int64_t>(condVal);
    switch (op) {
      case Opcode::BEQ:
        return condVal == 0;
      case Opcode::BNE:
        return condVal != 0;
      case Opcode::BLT:
        return sv < 0;
      case Opcode::BLE:
        return sv <= 0;
      case Opcode::BGT:
        return sv > 0;
      case Opcode::BGE:
        return sv >= 0;
      case Opcode::BR: case Opcode::BSR:
        return true;
      case Opcode::D_BEQ:
        return condVal == 0;
      case Opcode::D_BNE:
        return condVal != 0;
      default:
        panic("branchTaken: not a branch: ", opName(op));
    }
}

} // namespace dise
