#include "cpu/func_cpu.hh"

namespace dise {

FuncCpu::FuncCpu(ArchState &arch, MainMemory &mem, DiseEngine *engine,
                 StreamEnv env)
    : stream_(arch, mem, engine, env)
{
}

FuncResult
FuncCpu::run(uint64_t maxAppInsts)
{
    FuncResult res;
    MicroOp op;
    const bool jit = stream_.env().jit != nullptr;
    for (;;) {
        if (jit) {
            // Drain cached traces first; they retire in bulk. Traces
            // hold no handler ops, so non-app retirement is all
            // expansion work.
            auto c = stream_.runTraced(
                0, maxAppInsts ? maxAppInsts - res.appInsts : 0,
                /*appStopAtBoundary=*/false);
            res.microOps += c.uops;
            res.appInsts += c.appInsts;
            res.loads += c.appLoads;
            res.stores += c.appStores;
            res.expansionOps += c.uops - c.appInsts;
            if (maxAppInsts && res.appInsts >= maxAppInsts) {
                res.halt = HaltReason::InstLimit;
                break;
            }
        }
        if (!stream_.next(op))
            break;
        ++res.microOps;
        if (op.isAppInst()) {
            ++res.appInsts;
            if (op.isStoreOp())
                ++res.stores;
            if (op.isLoadOp())
                ++res.loads;
        } else if (op.inHandler) {
            ++res.handlerOps;
        } else {
            ++res.expansionOps;
        }
        if (op.isHalt) {
            res.halt = op.haltReason;
            break;
        }
        if (maxAppInsts && res.appInsts >= maxAppInsts) {
            res.halt = HaltReason::InstLimit;
            break;
        }
    }
    if (res.halt == HaltReason::None)
        res.halt = stream_.haltReason();
    res.faultMessage = stream_.faultMessage();
    return res;
}

} // namespace dise
