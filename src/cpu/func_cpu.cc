#include "cpu/func_cpu.hh"

namespace dise {

FuncCpu::FuncCpu(ArchState &arch, MainMemory &mem, DiseEngine *engine,
                 StreamEnv env)
    : stream_(arch, mem, engine, env)
{
}

FuncResult
FuncCpu::run(uint64_t maxAppInsts)
{
    FuncResult res;
    MicroOp op;
    while (stream_.next(op)) {
        ++res.microOps;
        if (op.isAppInst()) {
            ++res.appInsts;
            if (op.isStoreOp())
                ++res.stores;
            if (op.isLoadOp())
                ++res.loads;
        } else if (op.inHandler) {
            ++res.handlerOps;
        } else {
            ++res.expansionOps;
        }
        if (op.isHalt) {
            res.halt = op.haltReason;
            break;
        }
        if (maxAppInsts && res.appInsts >= maxAppInsts) {
            res.halt = HaltReason::InstLimit;
            break;
        }
    }
    if (res.halt == HaltReason::None)
        res.halt = stream_.haltReason();
    res.faultMessage = stream_.faultMessage();
    return res;
}

} // namespace dise
