/**
 * @file
 * Pure ALU semantics, shared by the functional oracle and tests.
 */

#ifndef DISE_CPU_ALU_HH
#define DISE_CPU_ALU_HH

#include <cstdint>

#include "isa/inst.hh"

namespace dise {

/** Compute a register-register or register-literal ALU result. */
uint64_t aluCompute(Opcode op, uint64_t a, uint64_t b);

/** Evaluate a conditional branch direction given its condition value. */
bool branchTaken(Opcode op, uint64_t condVal);

} // namespace dise

#endif // DISE_CPU_ALU_HH
