#include "cpu/inst_stream.hh"

#include "common/logging.hh"
#include "cpu/alu.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "jit/trace_cache.hh"

namespace dise {

InstStream::InstStream(ArchState &arch, MainMemory &mem, DiseEngine *engine,
                       StreamEnv env)
    : arch_(arch), mem_(mem), engine_(engine), env_(env)
{
    if (env_.uopCache)
        mem_.addCodeWatcher(this);
    if (env_.jit)
        env_.jit->bindEnv(env_);
}

InstStream::~InstStream()
{
    if (env_.uopCache)
        mem_.removeCodeWatcher(this);
}

void
InstStream::onCodeWrite(uint64_t frame)
{
    uopPages_.erase(frame);
    if (uopFrame_ == frame) {
        uopFrame_ = ~uint64_t{0};
        uopPage_ = nullptr;
    }
}

InstStream::UopEntry *
InstStream::uopEntryFor(Addr pc)
{
    uint64_t frame = pc / PageBytes;
    if (frame != uopFrame_) {
        auto &slot = uopPages_[frame];
        if (!slot)
            slot = std::make_unique<UopPage>();
        uopFrame_ = frame;
        uopPage_ = slot.get();
    }
    return &uopPage_->entries[(pc % PageBytes) / 4];
}

void
InstStream::beginExpansion(int slot, const Inst &trigger, Addr pc)
{
    seq_ = engine_->expandCached(slot, trigger);
    seqIdx_ = 0;
    trigger_ = trigger;
    trigPc_ = pc;
    seqNextPc_ = pc + 4;
    expanding_ = true;
    curSlot_ = slot;
    ++expId_;
}

void
InstStream::fault(MicroOp &op, const std::string &msg)
{
    warn("CPU fault at pc 0x", std::hex, op.pc, std::dec, ": ", msg);
    op.isHalt = true;
    op.haltReason = HaltReason::Fault;
    op.flush = FlushClass::Serialize;
    halted_ = true;
    haltReason_ = HaltReason::Fault;
    faultMsg_ = msg;
}

void
InstStream::finishExpansionIfDone()
{
    if (expanding_ && seqIdx_ >= seq_->insts.size()) {
        expanding_ = false;
        arch_.pc = seqNextPc_;
    }
}

bool
InstStream::next(MicroOp &op)
{
    if (halted_)
        return false;
    op = MicroOp{};
    op.seq = seqCounter_++;

    for (;;) {
        if (expanding_) {
            if (seqIdx_ >= seq_->insts.size()) {
                expanding_ = false;
                arch_.pc = seqNextPc_;
                continue;
            }
            op.inst = seq_->insts[seqIdx_];
            op.pc = trigPc_;
            op.disepc = static_cast<uint16_t>(seqIdx_ + 1);
            op.fromExpansion = true;
            op.isTriggerCopy = seq_->triggerCopy[seqIdx_] != 0;
            ++seqIdx_;
            execute(op);
            if (env_.observer && env_.observer->armed())
                env_.observer->onUop(op);
            finishExpansionIfDone();
            if (env_.jit)
                jitAfterOp(op);
            return true;
        }

        Addr pc = arch_.pc;
        op.pc = pc;

        // Fetch + decode, through the predecoded µop cache when the PC
        // is 4-aligned (unaligned PCs can straddle pages and would
        // alias cache slots; they take the direct path).
        const Inst *instP;
        Inst directInst;
        UopEntry *ent = nullptr;
        if (env_.uopCache && (pc & 3) == 0) {
            ent = uopEntryFor(pc);
            if (ent->decoded == UopEntry::Empty) {
                auto dec = decode(mem_.fetchWord(pc));
                if (dec) {
                    ent->decoded = UopEntry::Legal;
                    ent->inst = *dec;
                    // Arm write-invalidation for this page. Must also
                    // cover pages that do not exist yet (all-zero
                    // fetches decode): a later write creating the page
                    // has to drop the cached decode. Skipped for
                    // illegal words because that fetch faults and
                    // halts the stream for good.
                    mem_.markCodePage(pc);
                } else {
                    ent->decoded = UopEntry::Illegal;
                }
                ent->matchGen = ~uint64_t{0};
            }
            if (ent->decoded == UopEntry::Illegal) {
                fault(op, "illegal instruction word");
                return true;
            }
            instP = &ent->inst;
        } else {
            auto dec = decode(mem_.fetchWord(pc));
            if (!dec) {
                fault(op, "illegal instruction word");
                return true;
            }
            directInst = *dec;
            instP = &directInst;
        }

        if (engine_ && engine_->enabled() && !inHandler_) {
            int slot;
            if (ent) {
                // Cached match outcome, revalidated against the
                // pattern-table generation in O(1).
                if (ent->matchGen != engine_->generation()) {
                    ent->matchSlot = engine_->matchSlot(*instP, pc);
                    ent->matchGen = engine_->generation();
                }
                slot = ent->matchSlot;
            } else {
                slot = engine_->matchSlot(*instP, pc);
            }
            if (slot >= 0) {
                beginExpansion(slot, *instP, pc);
                continue;
            }
        }

        op.inst = *instP;
        op.disepc = 0;
        op.inHandler = inHandler_;
        if (inHandler_)
            op.handlerCallerPc = saved_.trigPc;
        if (!inHandler_ && env_.monitor && env_.stmtTraps &&
            env_.stmtTraps->count(pc)) {
            DebugAction act = env_.monitor->onStatement(pc);
            if (act.transitions())
                op.debug = act;
        }
        execute(op);
        if (env_.observer && env_.observer->armed())
            env_.observer->onUop(op);
        if (env_.jit)
            jitAfterOp(op);
        return true;
    }
}

void
InstStream::execute(MicroOp &op)
{
    const Inst &in = op.inst;
    const bool raw = !op.fromExpansion;
    auto rd = [&](RegId r) { return arch_.read(r); };
    auto wr = [&](RegId r, uint64_t v) { arch_.write(r, v); };
    auto advance = [&] {
        if (raw)
            arch_.pc = op.pc + 4;
    };
    auto controlTo = [&](bool taken, Addr target) {
        op.isCtrl = true;
        op.taken = taken;
        op.target = taken ? target : op.pc + 4;
        if (raw) {
            arch_.pc = op.target;
        } else if (taken) {
            // Conventional control transfer inside a replacement
            // sequence: goes to <newPC:0>, aborting the expansion, and
            // flushes like any DISE-internal transfer (not predicted).
            expanding_ = false;
            arch_.pc = target;
            op.flush = FlushClass::DiseTransfer;
        }
    };
    auto doTrap = [&] {
        DebugAction act = env_.monitor ? env_.monitor->onTrap(op)
                                       : DebugAction{TransitionKind::User};
        op.debug = act;
        op.flush = FlushClass::Serialize;
    };

    switch (in.info().fmt) {
      case Format::Operate:
        wr(in.rc, aluCompute(in.op, rd(in.ra), rd(in.rb)));
        advance();
        break;

      case Format::OperateImm:
        wr(in.rc, aluCompute(in.op, rd(in.ra),
                             static_cast<uint64_t>(in.imm) & 0xff));
        advance();
        break;

      case Format::Memory: {
        if (in.op == Opcode::LDA) {
            wr(in.ra, rd(in.rb) + in.imm);
            advance();
            break;
        }
        if (in.op == Opcode::LDAH) {
            wr(in.ra, rd(in.rb) + (static_cast<int64_t>(in.imm) << 16));
            advance();
            break;
        }
        Addr addr = rd(in.rb) + in.imm;
        unsigned bytes = in.memBytes();
        op.effAddr = addr;
        op.memBytes = bytes;
        if (in.isLoad()) {
            uint64_t v = in.op == Opcode::LDL
                             ? static_cast<uint64_t>(
                                   mem_.readSigned(addr, bytes))
                             : mem_.read(addr, bytes);
            wr(in.ra, v);
        } else {
            op.storeOld = mem_.read(addr, bytes);
            uint64_t v = rd(in.ra);
            mem_.write(addr, bytes, v);
            op.storeNew = mem_.read(addr, bytes);
            if (env_.monitor && env_.monitorStores) {
                DebugAction act = env_.monitor->onStore(op);
                if (act.transitions())
                    op.debug = act;
            }
        }
        advance();
        break;
      }

      case Format::Branch: {
        uint64_t cond = rd(in.ra);
        bool taken = branchTaken(in.op, cond);
        Addr target = op.pc + 4 + in.imm * 4;
        if (in.op == Opcode::BSR)
            wr(in.ra, op.pc + 4);
        controlTo(taken, target);
        break;
      }

      case Format::Jump: {
        Addr target = rd(in.rb);
        if (in.op == Opcode::JSR)
            wr(in.ra, op.pc + 4);
        controlTo(true, target);
        break;
      }

      case Format::System:
        switch (in.op) {
          case Opcode::SYSCALL:
            switch (in.imm) {
              case SysExit:
                op.isHalt = true;
                op.haltReason = HaltReason::Exited;
                halted_ = true;
                haltReason_ = HaltReason::Exited;
                break;
              case SysPutChar:
                if (env_.sink)
                    env_.sink->putChar(
                        static_cast<char>(rd(reg::a0) & 0xff));
                break;
              case SysPutInt:
                if (env_.sink)
                    env_.sink->putInt(
                        static_cast<int64_t>(rd(reg::a0)));
                break;
              case SysMark:
                if (env_.sink)
                    env_.sink->mark(rd(reg::a0));
                break;
              case SysAllocHint:
              case SysFreeHint:
                // Stateless allocator notifications for debug tools;
                // the armed UopObserver reads a0/a1 after execute().
                break;
              default:
                fault(op, "unknown syscall " + std::to_string(in.imm));
                return;
            }
            op.flush = FlushClass::Serialize;
            advance();
            break;
          case Opcode::TRAP:
            doTrap();
            advance();
            break;
          case Opcode::CODEWORD:
            // Unmatched codeword behaves as a nop.
            advance();
            break;
          default:
            fault(op, "bad system-format opcode");
            return;
        }
        break;

      case Format::Ctrap: {
        uint64_t cond = rd(in.ra);
        if (cond != 0)
            doTrap();
        advance();
        break;
      }

      case Format::Nullary:
        switch (in.op) {
          case Opcode::HALT:
            op.isHalt = true;
            op.haltReason = HaltReason::Halted;
            op.flush = FlushClass::Serialize;
            halted_ = true;
            haltReason_ = HaltReason::Halted;
            break;
          case Opcode::NOP:
            advance();
            break;
          case Opcode::D_RET: {
            if (!inHandler_) {
                fault(op, "d_ret outside a DISE-called function");
                return;
            }
            inHandler_ = false;
            seq_ = std::move(saved_.seq);
            seqIdx_ = saved_.idx;
            trigger_ = saved_.trigger;
            trigPc_ = saved_.trigPc;
            seqNextPc_ = saved_.nextPc;
            expanding_ = true;
            op.flush = FlushClass::DiseTransfer;
            break;
          }
          default:
            fault(op, "bad nullary opcode");
            return;
        }
        break;

      case Format::DiseBranch: {
        if (raw) {
            fault(op, "DISE branch outside a replacement sequence");
            return;
        }
        uint64_t cond = rd(in.ra);
        bool taken = branchTaken(in.op, cond);
        op.isCtrl = true;
        op.taken = taken;
        if (taken) {
            int64_t newIdx = static_cast<int64_t>(seqIdx_) + in.imm;
            if (newIdx < 0) {
                fault(op, "DISE branch to negative DISEPC");
                return;
            }
            seqIdx_ = static_cast<size_t>(newIdx);
            op.flush = FlushClass::DiseTransfer;
        }
        break;
      }

      case Format::DiseCall: {
        if (raw) {
            fault(op, "DISE call outside a replacement sequence");
            return;
        }
        if (in.op == Opcode::D_CCALL && rd(in.ra) == 0)
            break; // condition false: fall through, no flush
        Addr target = rd(in.rb);
        saved_.seq = std::move(seq_);
        saved_.idx = seqIdx_;
        saved_.trigger = trigger_;
        saved_.trigPc = trigPc_;
        saved_.nextPc = seqNextPc_;
        expanding_ = false;
        inHandler_ = true;
        arch_.pc = target;
        op.isCtrl = true;
        op.taken = true;
        op.target = target;
        op.flush = FlushClass::DiseTransfer;
        break;
      }

      case Format::DiseMove:
        if (!inHandler_) {
            fault(op, "d_mfr/d_mtr outside a DISE-called function");
            return;
        }
        if (in.op == Opcode::D_MFR)
            wr(in.ra, rd(in.rb));
        else
            wr(in.rb, rd(in.ra));
        advance();
        break;
    }
}

} // namespace dise
