#include "cpu/inst_stream.hh"

#include "common/logging.hh"
#include "cpu/alu.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

namespace dise {

InstStream::InstStream(ArchState &arch, MainMemory &mem, DiseEngine *engine,
                       StreamEnv env)
    : arch_(arch), mem_(mem), engine_(engine), env_(env)
{
}

void
InstStream::fault(MicroOp &op, const std::string &msg)
{
    warn("CPU fault at pc 0x", std::hex, op.pc, std::dec, ": ", msg);
    op.isHalt = true;
    op.haltReason = HaltReason::Fault;
    op.flush = FlushClass::Serialize;
    halted_ = true;
    haltReason_ = HaltReason::Fault;
    faultMsg_ = msg;
}

void
InstStream::finishExpansionIfDone()
{
    if (expanding_ && seqIdx_ >= seq_.size()) {
        expanding_ = false;
        arch_.pc = seqNextPc_;
    }
}

bool
InstStream::next(MicroOp &op)
{
    if (halted_)
        return false;
    op = MicroOp{};
    op.seq = seqCounter_++;

    for (;;) {
        if (expanding_) {
            if (seqIdx_ >= seq_.size()) {
                expanding_ = false;
                arch_.pc = seqNextPc_;
                continue;
            }
            op.inst = seq_[seqIdx_];
            op.pc = trigPc_;
            op.disepc = static_cast<uint16_t>(seqIdx_ + 1);
            op.fromExpansion = true;
            op.isTriggerCopy =
                curProd_ && curProd_->replacement[seqIdx_].triggerCopy;
            ++seqIdx_;
            execute(op);
            finishExpansionIfDone();
            return true;
        }

        Addr pc = arch_.pc;
        op.pc = pc;
        uint32_t word = static_cast<uint32_t>(mem_.read(pc, 4));
        auto dec = decode(word);
        if (!dec) {
            fault(op, "illegal instruction word");
            return true;
        }
        Inst inst = *dec;

        if (engine_ && engine_->enabled() && !inHandler_) {
            const Production *prod = engine_->matchFunctional(inst, pc);
            if (prod) {
                seq_ = engine_->expand(*prod, inst);
                seqIdx_ = 0;
                trigger_ = inst;
                trigPc_ = pc;
                seqNextPc_ = pc + 4;
                curProd_ = prod;
                expanding_ = true;
                continue;
            }
        }

        op.inst = inst;
        op.disepc = 0;
        op.inHandler = inHandler_;
        if (inHandler_)
            op.handlerCallerPc = saved_.trigPc;
        if (!inHandler_ && env_.monitor && env_.stmtTraps &&
            env_.stmtTraps->count(pc)) {
            DebugAction act = env_.monitor->onStatement(pc);
            if (act.transitions())
                op.debug = act;
        }
        execute(op);
        return true;
    }
}

void
InstStream::execute(MicroOp &op)
{
    const Inst &in = op.inst;
    const bool raw = !op.fromExpansion;
    auto rd = [&](RegId r) { return arch_.read(r); };
    auto wr = [&](RegId r, uint64_t v) { arch_.write(r, v); };
    auto advance = [&] {
        if (raw)
            arch_.pc = op.pc + 4;
    };
    auto controlTo = [&](bool taken, Addr target) {
        op.isCtrl = true;
        op.taken = taken;
        op.target = taken ? target : op.pc + 4;
        if (raw) {
            arch_.pc = op.target;
        } else if (taken) {
            // Conventional control transfer inside a replacement
            // sequence: goes to <newPC:0>, aborting the expansion, and
            // flushes like any DISE-internal transfer (not predicted).
            expanding_ = false;
            arch_.pc = target;
            op.flush = FlushClass::DiseTransfer;
        }
    };
    auto doTrap = [&] {
        DebugAction act = env_.monitor ? env_.monitor->onTrap(op)
                                       : DebugAction{TransitionKind::User};
        op.debug = act;
        op.flush = FlushClass::Serialize;
    };

    switch (in.info().fmt) {
      case Format::Operate:
        wr(in.rc, aluCompute(in.op, rd(in.ra), rd(in.rb)));
        advance();
        break;

      case Format::OperateImm:
        wr(in.rc, aluCompute(in.op, rd(in.ra),
                             static_cast<uint64_t>(in.imm) & 0xff));
        advance();
        break;

      case Format::Memory: {
        if (in.op == Opcode::LDA) {
            wr(in.ra, rd(in.rb) + in.imm);
            advance();
            break;
        }
        if (in.op == Opcode::LDAH) {
            wr(in.ra, rd(in.rb) + (static_cast<int64_t>(in.imm) << 16));
            advance();
            break;
        }
        Addr addr = rd(in.rb) + in.imm;
        unsigned bytes = in.memBytes();
        op.effAddr = addr;
        op.memBytes = bytes;
        if (in.isLoad()) {
            uint64_t v = in.op == Opcode::LDL
                             ? static_cast<uint64_t>(
                                   mem_.readSigned(addr, bytes))
                             : mem_.read(addr, bytes);
            wr(in.ra, v);
        } else {
            op.storeOld = mem_.read(addr, bytes);
            uint64_t v = rd(in.ra);
            mem_.write(addr, bytes, v);
            op.storeNew = mem_.read(addr, bytes);
            if (env_.monitor && env_.monitorStores) {
                DebugAction act = env_.monitor->onStore(op);
                if (act.transitions())
                    op.debug = act;
            }
        }
        advance();
        break;
      }

      case Format::Branch: {
        uint64_t cond = rd(in.ra);
        bool taken = branchTaken(in.op, cond);
        Addr target = op.pc + 4 + in.imm * 4;
        if (in.op == Opcode::BSR)
            wr(in.ra, op.pc + 4);
        controlTo(taken, target);
        break;
      }

      case Format::Jump: {
        Addr target = rd(in.rb);
        if (in.op == Opcode::JSR)
            wr(in.ra, op.pc + 4);
        controlTo(true, target);
        break;
      }

      case Format::System:
        switch (in.op) {
          case Opcode::SYSCALL:
            switch (in.imm) {
              case SysExit:
                op.isHalt = true;
                op.haltReason = HaltReason::Exited;
                halted_ = true;
                haltReason_ = HaltReason::Exited;
                break;
              case SysPutChar:
                if (env_.sink)
                    env_.sink->putChar(
                        static_cast<char>(rd(reg::a0) & 0xff));
                break;
              case SysPutInt:
                if (env_.sink)
                    env_.sink->putInt(
                        static_cast<int64_t>(rd(reg::a0)));
                break;
              case SysMark:
                if (env_.sink)
                    env_.sink->mark(rd(reg::a0));
                break;
              default:
                fault(op, "unknown syscall " + std::to_string(in.imm));
                return;
            }
            op.flush = FlushClass::Serialize;
            advance();
            break;
          case Opcode::TRAP:
            doTrap();
            advance();
            break;
          case Opcode::CODEWORD:
            // Unmatched codeword behaves as a nop.
            advance();
            break;
          default:
            fault(op, "bad system-format opcode");
            return;
        }
        break;

      case Format::Ctrap: {
        uint64_t cond = rd(in.ra);
        if (cond != 0)
            doTrap();
        advance();
        break;
      }

      case Format::Nullary:
        switch (in.op) {
          case Opcode::HALT:
            op.isHalt = true;
            op.haltReason = HaltReason::Halted;
            op.flush = FlushClass::Serialize;
            halted_ = true;
            haltReason_ = HaltReason::Halted;
            break;
          case Opcode::NOP:
            advance();
            break;
          case Opcode::D_RET: {
            if (!inHandler_) {
                fault(op, "d_ret outside a DISE-called function");
                return;
            }
            inHandler_ = false;
            seq_ = std::move(saved_.seq);
            seqIdx_ = saved_.idx;
            trigger_ = saved_.trigger;
            trigPc_ = saved_.trigPc;
            seqNextPc_ = saved_.nextPc;
            curProd_ = saved_.prod;
            expanding_ = true;
            op.flush = FlushClass::DiseTransfer;
            break;
          }
          default:
            fault(op, "bad nullary opcode");
            return;
        }
        break;

      case Format::DiseBranch: {
        if (raw) {
            fault(op, "DISE branch outside a replacement sequence");
            return;
        }
        uint64_t cond = rd(in.ra);
        bool taken = branchTaken(in.op, cond);
        op.isCtrl = true;
        op.taken = taken;
        if (taken) {
            int64_t newIdx = static_cast<int64_t>(seqIdx_) + in.imm;
            if (newIdx < 0) {
                fault(op, "DISE branch to negative DISEPC");
                return;
            }
            seqIdx_ = static_cast<size_t>(newIdx);
            op.flush = FlushClass::DiseTransfer;
        }
        break;
      }

      case Format::DiseCall: {
        if (raw) {
            fault(op, "DISE call outside a replacement sequence");
            return;
        }
        if (in.op == Opcode::D_CCALL && rd(in.ra) == 0)
            break; // condition false: fall through, no flush
        Addr target = rd(in.rb);
        saved_.seq = std::move(seq_);
        saved_.idx = seqIdx_;
        saved_.trigger = trigger_;
        saved_.trigPc = trigPc_;
        saved_.nextPc = seqNextPc_;
        saved_.prod = curProd_;
        expanding_ = false;
        inHandler_ = true;
        arch_.pc = target;
        op.isCtrl = true;
        op.taken = true;
        op.target = target;
        op.flush = FlushClass::DiseTransfer;
        break;
      }

      case Format::DiseMove:
        if (!inHandler_) {
            fault(op, "d_mfr/d_mtr outside a DISE-called function");
            return;
        }
        if (in.op == Opcode::D_MFR)
            wr(in.ra, rd(in.rb));
        else
            wr(in.rb, rd(in.ra));
        advance();
        break;
    }
}

} // namespace dise
