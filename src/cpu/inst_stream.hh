/**
 * @file
 * The correct-path instruction-stream oracle.
 *
 * InstStream fetches from functional memory, runs the DISE engine at
 * "decode" (expanding triggers into replacement sequences, tracking
 * DISEPC, entering/leaving DISE-called functions), executes every
 * correct-path instruction against architectural state in program
 * order, and invokes the installed DebugMonitor at the points a real
 * debugger would observe: store execution, statement boundaries, and
 * trap instructions.
 *
 * Both the simple functional CPU and the cycle-level timing CPU consume
 * this stream; the timing model replays it with costs (functional-first
 * simulation in the SimpleScalar tradition).
 *
 * Hot-path structure: fetched instructions are decoded once into a
 * per-page predecoded µop cache that also remembers the DISE-match
 * outcome for each PC (validated against the engine's generation
 * counter). Self-modifying and debugger-rewritten code stays correct
 * because the stream registers as a CodeWatcher with MainMemory: any
 * write to a page holding cached decodes drops that page. Replacement
 * sequences are shared, memoized vectors from the engine rather than
 * per-trigger allocations.
 */

#ifndef DISE_CPU_INST_STREAM_HH
#define DISE_CPU_INST_STREAM_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/arch_state.hh"
#include "cpu/microop.hh"
#include "dise/engine.hh"
#include "mem/mainmem.hh"

namespace dise {

class TraceCache;
struct Trace;

/** Destination for syscall output and test marks. */
class OutputSink
{
  public:
    virtual ~OutputSink() = default;
    virtual void putChar(char c) { text += c; }
    virtual void
    putInt(int64_t v)
    {
        text += std::to_string(v);
    }
    virtual void mark(uint64_t v) { marks.push_back(v); }

    std::string text;
    std::vector<uint64_t> marks;
};

/** Hooks and configuration for the stream (installed by backends). */
struct StreamEnv
{
    DebugMonitor *monitor = nullptr;
    /** Call monitor->onStore for every store (VM / HW-reg backends). */
    bool monitorStores = false;
    /** Statement-boundary PCs that trigger monitor->onStatement. */
    const std::unordered_set<Addr> *stmtTraps = nullptr;
    OutputSink *sink = nullptr;
    /** Armed µop tap for debug tools (asan, memtrace, ...). */
    UopObserver *observer = nullptr;
    /** Predecoded µop cache (perf only; off for A/B benchmarking). */
    bool uopCache = true;
    /** Trace cache for the hot path (owned by the DebugTarget; null
     *  disables both trace recording and dispatch). */
    TraceCache *jit = nullptr;
    /**
     * The monitor's monotonic event counter
     * (DebugBackend::eventsRecorded). Trace execution samples it after
     * every monitor callback and side-exits the moment an event is
     * recorded, so event parks land at the exact µop the interpreter
     * would park at. Monitored ops are not recorded into traces without
     * it.
     */
    const uint64_t *events = nullptr;
};

/** Syscall codes understood by the simulated OS layer. */
enum : int64_t {
    SysExit = 0,
    SysPutChar = 1,
    SysPutInt = 2,
    SysMark = 3,
    /** Allocator hint: a0 = block base, a1 = size (tools observe it). */
    SysAllocHint = 4,
    /** Allocator hint: a0 = block base being freed. */
    SysFreeHint = 5,
};

class InstStream : public CodeWatcher
{
  public:
    InstStream(ArchState &arch, MainMemory &mem, DiseEngine *engine,
               StreamEnv env = {});
    ~InstStream() override;

    InstStream(const InstStream &) = delete;
    InstStream &operator=(const InstStream &) = delete;

    /**
     * Produce the next correct-path micro-op (functionally executed).
     * Returns false once the program has halted or faulted.
     */
    bool next(MicroOp &op);

    /** µops retired by one runTraced() call, split the way the callers
     *  account them. */
    struct TracedCounts
    {
        uint64_t uops = 0;
        uint64_t appInsts = 0;
        uint64_t appLoads = 0;
        uint64_t appStores = 0;
    };

    /**
     * Execute cached traces from the current position for as long as
     * they keep applying. Budgets are relative and 0 means unlimited;
     * with @p appStopAtBoundary the app-instruction budget only stops
     * execution before a raw op (TimeTravel's stop discipline), without
     * it before any op once met (FuncCpu's). Returns zero counts when
     * no trace applies here (halted, mid-expansion, observer armed, jit
     * disabled, or no valid trace at this PC) — the caller falls back
     * to next(). On return, stream state is exactly what interpreting
     * the retired µops would have produced.
     */
    TracedCounts runTraced(uint64_t maxUops, uint64_t maxAppInsts,
                           bool appStopAtBoundary);

    const StreamEnv &env() const { return env_; }

    bool halted() const { return halted_; }
    HaltReason haltReason() const { return haltReason_; }
    const std::string &faultMessage() const { return faultMsg_; }

    /** True while expanding a replacement sequence (tests). */
    bool inExpansion() const { return expanding_; }
    /** True while executing a DISE-called function (tests). */
    bool inHandler() const { return inHandler_; }

    /** CodeWatcher: a write hit a page with cached decodes. */
    void onCodeWrite(uint64_t frame) override;

    /** Cached µop pages currently held (tests). */
    size_t uopCachedPages() const { return uopPages_.size(); }

  private:
    /** One predecoded fetch slot (per 4-byte-aligned PC). */
    struct UopEntry
    {
        enum : uint8_t { Empty = 0, Legal, Illegal };
        uint8_t decoded = Empty;
        /** Cached matchSlot() outcome; -1 = no production matches. */
        int32_t matchSlot = -1;
        /** Engine generation the match was computed under. */
        uint64_t matchGen = ~uint64_t{0};
        Inst inst{};
    };
    struct UopPage
    {
        std::array<UopEntry, PageBytes / 4> entries;
    };

    void execute(MicroOp &op);
    void fault(MicroOp &op, const std::string &msg);
    void finishExpansionIfDone();
    UopEntry *uopEntryFor(Addr pc);
    void beginExpansion(int slot, const Inst &trigger, Addr pc);

    // Trace recording/execution (jit/trace_exec.cc).
    enum class TraceExit { End, Budget, Guard, Event };
    TraceExit execTrace(const Trace &t, TracedCounts &c, uint64_t maxUops,
                        uint64_t maxAppInsts, bool appStopAtBoundary);
    void jitAfterOp(const MicroOp &op);
    void jitRecordOp(const MicroOp &op);
    void jitStartRecording(Addr startPc);
    void jitFinalize(bool full);

    ArchState &arch_;
    MainMemory &mem_;
    DiseEngine *engine_;
    StreamEnv env_;

    // Predecoded µop cache.
    std::unordered_map<uint64_t, std::unique_ptr<UopPage>> uopPages_;
    uint64_t uopFrame_ = ~uint64_t{0}; ///< one-entry page cache
    UopPage *uopPage_ = nullptr;

    // Expansion state. The shared Expansion is self-contained (insts +
    // trigger-copy flags), so nothing here dangles if the pattern table
    // mutates while an expansion is in flight.
    bool expanding_ = false;
    DiseEngine::ExpansionRef seq_;
    size_t seqIdx_ = 0;
    Inst trigger_{};
    Addr trigPc_ = 0;
    Addr seqNextPc_ = 0;

    // DISE-called function state.
    bool inHandler_ = false;
    struct SavedCtx
    {
        DiseEngine::ExpansionRef seq;
        size_t idx = 0;
        Inst trigger{};
        Addr trigPc = 0;
        Addr nextPc = 0;
    } saved_;

    bool halted_ = false;
    HaltReason haltReason_ = HaltReason::None;
    std::string faultMsg_;
    uint64_t seqCounter_ = 0;

    /** Pattern-table slot of the expansion in flight (trace recording
     *  needs it to rebuild the side-exit context). */
    int curSlot_ = -1;
    /** Distinct-expansion counter; disambiguates two expansions of the
     *  same production at the same PC while recording. */
    uint64_t expId_ = 0;

    // In-flight trace recording.
    struct JitRec
    {
        bool active = false;
        std::shared_ptr<Trace> trace;
        /** Ops recorded up to the last raw-op boundary (trim point). */
        size_t lastBoundaryOps = 0;
        Addr lastBoundaryPc = 0;
        /** expId_ of the expansion the newest ctx entry belongs to. */
        uint64_t lastExpId = 0;
    } jitRec_;
};

} // namespace dise

#endif // DISE_CPU_INST_STREAM_HH
