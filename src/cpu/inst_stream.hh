/**
 * @file
 * The correct-path instruction-stream oracle.
 *
 * InstStream fetches from functional memory, runs the DISE engine at
 * "decode" (expanding triggers into replacement sequences, tracking
 * DISEPC, entering/leaving DISE-called functions), executes every
 * correct-path instruction against architectural state in program
 * order, and invokes the installed DebugMonitor at the points a real
 * debugger would observe: store execution, statement boundaries, and
 * trap instructions.
 *
 * Both the simple functional CPU and the cycle-level timing CPU consume
 * this stream; the timing model replays it with costs (functional-first
 * simulation in the SimpleScalar tradition).
 */

#ifndef DISE_CPU_INST_STREAM_HH
#define DISE_CPU_INST_STREAM_HH

#include <string>
#include <unordered_set>
#include <vector>

#include "cpu/arch_state.hh"
#include "cpu/microop.hh"
#include "dise/engine.hh"
#include "mem/mainmem.hh"

namespace dise {

/** Destination for syscall output and test marks. */
class OutputSink
{
  public:
    virtual ~OutputSink() = default;
    virtual void putChar(char c) { text += c; }
    virtual void
    putInt(int64_t v)
    {
        text += std::to_string(v);
    }
    virtual void mark(uint64_t v) { marks.push_back(v); }

    std::string text;
    std::vector<uint64_t> marks;
};

/** Hooks and configuration for the stream (installed by backends). */
struct StreamEnv
{
    DebugMonitor *monitor = nullptr;
    /** Call monitor->onStore for every store (VM / HW-reg backends). */
    bool monitorStores = false;
    /** Statement-boundary PCs that trigger monitor->onStatement. */
    const std::unordered_set<Addr> *stmtTraps = nullptr;
    OutputSink *sink = nullptr;
};

/** Syscall codes understood by the simulated OS layer. */
enum : int64_t {
    SysExit = 0,
    SysPutChar = 1,
    SysPutInt = 2,
    SysMark = 3,
};

class InstStream
{
  public:
    InstStream(ArchState &arch, MainMemory &mem, DiseEngine *engine,
               StreamEnv env = {});

    /**
     * Produce the next correct-path micro-op (functionally executed).
     * Returns false once the program has halted or faulted.
     */
    bool next(MicroOp &op);

    bool halted() const { return halted_; }
    HaltReason haltReason() const { return haltReason_; }
    const std::string &faultMessage() const { return faultMsg_; }

    /** True while expanding a replacement sequence (tests). */
    bool inExpansion() const { return expanding_; }
    /** True while executing a DISE-called function (tests). */
    bool inHandler() const { return inHandler_; }

  private:
    void execute(MicroOp &op);
    void fault(MicroOp &op, const std::string &msg);
    void finishExpansionIfDone();

    ArchState &arch_;
    MainMemory &mem_;
    DiseEngine *engine_;
    StreamEnv env_;

    // Expansion state.
    bool expanding_ = false;
    std::vector<Inst> seq_;
    size_t seqIdx_ = 0;
    Inst trigger_{};
    Addr trigPc_ = 0;
    Addr seqNextPc_ = 0;
    const Production *curProd_ = nullptr;

    // DISE-called function state.
    bool inHandler_ = false;
    struct SavedCtx
    {
        std::vector<Inst> seq;
        size_t idx = 0;
        Inst trigger{};
        Addr trigPc = 0;
        Addr nextPc = 0;
        const Production *prod = nullptr;
    } saved_;

    bool halted_ = false;
    HaltReason haltReason_ = HaltReason::None;
    std::string faultMsg_;
    uint64_t seqCounter_ = 0;
};

} // namespace dise

#endif // DISE_CPU_INST_STREAM_HH
