/**
 * @file
 * Cycle-level 4-wide dynamically-scheduled pipeline, configured per
 * Section 5 of the paper: 12-stage pipe (modeled as an 8-cycle
 * front-end refill after any redirect), 128-entry re-order buffer,
 * 80 reservation stations, hybrid branch prediction with BTB and RAS,
 * two cache ports, and the paper's memory hierarchy.
 *
 * Functional-first structure: the InstStream oracle supplies
 * pre-executed correct-path micro-ops; this model charges time.
 * Wrong-path work is modeled as a fetch gap between a flush-inducing
 * op and its resolution (mispredict-recovery style), which is also
 * exactly how DISE control transfers are specified to behave.
 *
 * Debugger-transition methodology (Section 5): user-bound transitions
 * are free; spurious transitions flush the pipe and stall for
 * transitionCost cycles (default 100,000).
 */

#ifndef DISE_CPU_TIMING_CPU_HH
#define DISE_CPU_TIMING_CPU_HH

#include <deque>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/arch_state.hh"
#include "cpu/inst_stream.hh"
#include "mem/hierarchy.hh"

namespace dise {

struct TimingConfig
{
    unsigned width = 4;        ///< fetch/rename/issue/commit width
    unsigned robSize = 128;    ///< re-order buffer entries
    unsigned rsSize = 80;      ///< reservation stations
    unsigned frontDepth = 8;   ///< redirect-to-rename refill cycles
    unsigned cachePorts = 2;   ///< data-cache ports per cycle
    unsigned intAlus = 4;
    unsigned mulLatency = 3;
    uint64_t transitionCost = 100000; ///< spurious debugger transition
    bool mtHandlers = false;   ///< run DISE-called functions flush-free
    /**
     * Host-side perf switch (simulated behavior is identical): issue
     * and memory-disambiguation scans use a head cursor plus an
     * age-ordered store ring instead of walking the whole ROB every
     * cycle. Off reproduces the legacy linear scans for A/B
     * measurement (bench/throughput.cc --timing).
     */
    bool robCursors = true;
    /**
     * Host-side perf switch (simulated behavior is identical): the
     * stream decodes each micro-op directly into a fixed pool slot and
     * the ROB holds stable pointers, so an op is never copied between
     * delivery and retirement. Off reproduces the legacy
     * copy-into-the-window mode for A/B measurement.
     */
    bool opRefs = true;
    MemSystemConfig mem{};
    BranchPredictorConfig bpred{};
};

struct RunLimits
{
    uint64_t maxAppInsts = 0; ///< 0 = unlimited
    uint64_t maxCycles = 0;   ///< 0 = unlimited
};

/** Timing run outcome. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t microOps = 0;   ///< all retired micro-ops
    uint64_t appInsts = 0;   ///< application instructions retired
    uint64_t expansionOps = 0;
    uint64_t handlerOps = 0;
    uint64_t loads = 0;
    uint64_t stores = 0; ///< application stores
    uint64_t mispredictFlushes = 0;
    uint64_t diseFlushes = 0;
    uint64_t serializeFlushes = 0;
    uint64_t transitionsUser = 0;
    uint64_t transitionsSpuriousAddr = 0;
    uint64_t transitionsSpuriousValue = 0;
    uint64_t transitionsSpuriousPred = 0;
    uint64_t transitionStallCycles = 0;
    HaltReason halt = HaltReason::None;
    std::string faultMessage;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(appInsts) / cycles : 0.0;
    }
    uint64_t
    spuriousTransitions() const
    {
        return transitionsSpuriousAddr + transitionsSpuriousValue +
               transitionsSpuriousPred;
    }
};

class TimingCpu
{
  public:
    TimingCpu(ArchState &arch, MainMemory &mem, DiseEngine *engine,
              StreamEnv env = {}, TimingConfig cfg = {});

    /** Simulate until program halt or a limit. */
    RunStats run(const RunLimits &limits = {});

    MemSystem &memSystem() { return memSys_; }
    BranchPredictor &predictor() { return bpred_; }

  private:
    enum class SlotState : uint8_t { Free, Dispatched, Done };

    struct RobEntry
    {
        /** Stable µop storage: a pool_ slot (cfg_.opRefs) or the
         *  entry's opStore_ slot (legacy copy mode). Valid while the
         *  entry is in flight; stale once the slot is Free. */
        const MicroOp *op = nullptr;
        SlotState state = SlotState::Free;
        uint64_t dispatchCycle = 0;
        uint64_t doneCycle = 0;
        int prod[2] = {-1, -1};
        uint64_t prodSeq[2] = {0, 0};
        bool stallCharged = false;
    };

    bool deliverOne(uint64_t now, RunStats &stats, const RunLimits &lim);
    void classifyControl(MicroOp &op);
    bool sourcesReady(const RobEntry &e, uint64_t now) const;
    bool olderStoresAddrKnown(int slot, uint64_t now) const;
    int forwardingStore(int slot) const;
    void retireRenameRefs(int slot);

    ArchState &arch_;
    InstStream stream_;
    TimingConfig cfg_;
    MemSystem memSys_;
    BranchPredictor bpred_;

    // ROB ring buffer.
    std::vector<RobEntry> rob_;
    int robHead_ = 0;
    int robCount_ = 0;
    unsigned rsCount_ = 0;

    /** Age of @p slot relative to the ROB head (0 = oldest). */
    int
    robAge(int slot) const
    {
        return (slot - robHead_ + static_cast<int>(cfg_.robSize)) %
               static_cast<int>(cfg_.robSize);
    }

    // Scan accelerators (cfg_.robCursors). The issue stage skips the
    // head-side prefix of already-issued entries and stops once every
    // waiting entry has been seen; the memory stages walk only the
    // in-flight stores, oldest first, instead of the whole window.
    int issueSkip_ = 0;           ///< head-relative all-issued prefix
    std::deque<int> storeSlots_;  ///< in-flight store slots, age order

    // µop storage (cfg_.opRefs): robSize + 2 pool slots cover the full
    // window plus the pending op; freeSlots_ is a stack of unowned
    // slot indices and pendingSlot_ is the slot the stream decodes
    // into next. Legacy copy mode uses opStore_ (indexed by ROB slot)
    // and the pending_ staging op instead.
    std::vector<MicroOp> pool_;
    std::vector<int> freeSlots_;
    int pendingSlot_ = 0;
    std::vector<MicroOp> opStore_;

    // Rename map: logical register -> producing ROB slot.
    int renameMap_[NumLogicalRegs];

    // Front-end state.
    bool frontBlocked_ = false;
    uint64_t frontResumeCycle_ = 0;
    uint64_t lastFetchLine_ = ~uint64_t{0};
    bool havePending_ = false;
    MicroOp pending_;
    bool streamDone_ = false;
    uint64_t deliveredAppInsts_ = 0;

    // Commit state.
    uint64_t commitStallUntil_ = 0;

    // Per-cycle structural counters.
    unsigned portUsed_ = 0;
    unsigned aluUsed_ = 0;
    unsigned mulUsed_ = 0;
    unsigned issuedThisCycle_ = 0;
};

} // namespace dise

#endif // DISE_CPU_TIMING_CPU_HH
