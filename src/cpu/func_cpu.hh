/**
 * @file
 * Functional-only CPU: drains the InstStream with no timing model.
 * Used for fast correctness tests, cross-backend validation of
 * debugger event sequences, and workload calibration.
 */

#ifndef DISE_CPU_FUNC_CPU_HH
#define DISE_CPU_FUNC_CPU_HH

#include "cpu/inst_stream.hh"

namespace dise {

/** Aggregate outcome of a functional run. */
struct FuncResult
{
    uint64_t microOps = 0;
    uint64_t appInsts = 0;
    uint64_t expansionOps = 0;
    uint64_t handlerOps = 0;
    uint64_t loads = 0;
    uint64_t stores = 0; ///< application stores only
    HaltReason halt = HaltReason::None;
    std::string faultMessage;
};

class FuncCpu
{
  public:
    FuncCpu(ArchState &arch, MainMemory &mem, DiseEngine *engine,
            StreamEnv env = {});

    /** Run until halt/fault or @p maxAppInsts application instructions. */
    FuncResult run(uint64_t maxAppInsts = 0);

    InstStream &stream() { return stream_; }

  private:
    InstStream stream_;
};

} // namespace dise

#endif // DISE_CPU_FUNC_CPU_HH
