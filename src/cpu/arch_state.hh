/**
 * @file
 * Architectural state: the 32 integer registers, the 8 private DISE
 * registers (one renamed register space, per the DISE design), and the
 * program counter. Memory lives separately in MainMemory.
 */

#ifndef DISE_CPU_ARCH_STATE_HH
#define DISE_CPU_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "common/bitutils.hh"
#include "isa/inst.hh"

namespace dise {

class ArchState
{
  public:
    /** Read a register; the zero register always reads 0. */
    uint64_t
    read(RegId r) const
    {
        if (!r.valid() || r.isZero())
            return 0;
        return regs_[r.flat()];
    }

    /** Write a register; writes to the zero register are discarded. */
    void
    write(RegId r, uint64_t v)
    {
        if (!r.valid() || r.isZero())
            return;
        regs_[r.flat()] = v;
    }

    /** @name Privileged DISE-register access (controller/debugger). */
    ///@{
    uint64_t readDise(unsigned idx) const { return regs_[NumIntRegs + idx]; }
    void writeDise(unsigned idx, uint64_t v) { regs_[NumIntRegs + idx] = v; }
    ///@}

    Addr pc = 0;

    void
    reset()
    {
        regs_.fill(0);
        pc = 0;
    }

    /** Fold the full register file and PC into an FNV-1a hash
     *  (state digests for deterministic-replay verification). */
    uint64_t
    hashInto(uint64_t h) const
    {
        for (uint64_t v : regs_)
            h = fnvMix(h, v);
        return fnvMix(h, pc);
    }

  private:
    std::array<uint64_t, NumLogicalRegs> regs_{};
};

} // namespace dise

#endif // DISE_CPU_ARCH_STATE_HH
