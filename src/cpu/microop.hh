/**
 * @file
 * The micro-operation record flowing through the pipeline, the debugger
 * transition classification, and the monitor interface that debugger
 * backends install to observe the instruction stream in functional
 * (program) order.
 *
 * The simulator is functional-first: the InstStream oracle executes
 * correct-path instructions at delivery time and stores all outcomes
 * (results, addresses, branch directions, debugger-transition
 * decisions) in the MicroOp; the timing model replays them with costs.
 */

#ifndef DISE_CPU_MICROOP_HH
#define DISE_CPU_MICROOP_HH

#include <cstdint>

#include "isa/inst.hh"

namespace dise {

/** Why an op forces a pipeline flush. */
enum class FlushClass : uint8_t {
    None,
    Mispredict,   ///< conventional branch resolved against prediction
    DiseTransfer, ///< taken d-branch / d_call / d_ret (flush-based)
    Serialize,    ///< syscalls and committed debugger traps
};

/** How a store or statement boundary fails to reach the user. */
enum class TransitionKind : uint8_t {
    None,
    SpuriousAddress,   ///< watched data not actually written
    SpuriousValue,     ///< written but value unchanged (silent store)
    SpuriousPredicate, ///< value changed but the condition is false
    User,              ///< control genuinely transfers to the user
};

/** Debugger-transition decision attached to an op in functional order. */
struct DebugAction
{
    TransitionKind kind = TransitionKind::None;

    bool transitions() const { return kind != TransitionKind::None; }
    bool
    spurious() const
    {
        return transitions() && kind != TransitionKind::User;
    }
};

/** Program-halt reasons. */
enum class HaltReason : uint8_t {
    None,
    Halted,      ///< HALT instruction
    Exited,      ///< exit syscall
    Fault,       ///< illegal instruction / DISE misuse
    InstLimit,   ///< harness instruction budget reached
    CycleLimit,  ///< harness cycle budget reached
};

/** One correct-path micro-operation with oracle outcomes. */
struct MicroOp
{
    Inst inst{};
    Addr pc = 0;
    /** Position within a replacement sequence, plus one; 0 means the op
     *  came from the fetched stream unexpanded. */
    uint16_t disepc = 0;
    bool fromExpansion = false;
    bool inHandler = false; ///< executing a DISE-called function
    /** This op is the T.INST trigger copy inside an expansion: it is
     *  the application's own instruction and counts as such. */
    bool isTriggerCopy = false;
    /** For ops inside a DISE-called function: the trigger instruction's
     *  PC (the architecturally-saved return context <PC:DISEPC+1>). */
    Addr handlerCallerPc = 0;
    uint64_t seq = 0;

    // Memory oracle.
    Addr effAddr = 0;
    unsigned memBytes = 0;
    uint64_t storeOld = 0;
    uint64_t storeNew = 0;

    // Control oracle.
    bool isCtrl = false;
    bool taken = false;
    Addr target = 0;

    // Timing classification.
    FlushClass flush = FlushClass::None;
    DebugAction debug{};
    bool isHalt = false;
    HaltReason haltReason = HaltReason::None;

    bool isStoreOp() const { return inst.isStore(); }
    bool isLoadOp() const { return inst.isLoad(); }
    /** Ops the paper's simulator would count as application work. */
    bool
    isAppInst() const
    {
        return (!fromExpansion && !inHandler) || isTriggerCopy;
    }
};

/**
 * Low-cost functional-order µop tap for debug tools.
 *
 * Unlike DebugMonitor (which backends install to *classify* debugger
 * transitions), a UopObserver passively watches every executed µop.
 * The stream pays one inline non-virtual `armed()` check per op; the
 * virtual dispatch happens only while at least one tool is enabled.
 */
class UopObserver
{
  public:
    virtual ~UopObserver() = default;

    /** True while any consumer is attached; inline fast-path gate. */
    bool armed() const { return armed_; }

    /** An op just executed (oracle fields filled, program order). */
    virtual void onUop(const MicroOp &op) = 0;

  protected:
    bool armed_ = false;
};

/**
 * Functional-order observer installed by debugger backends.
 *
 * All callbacks run in program order with architectural memory state
 * exactly as an in-order machine would see it, so backends evaluate
 * watchpoint expressions the way the real debugger process would.
 */
class DebugMonitor
{
  public:
    virtual ~DebugMonitor() = default;

    /**
     * A store just executed (old/new value of the stored bytes given).
     * Called for every store when installed. Return the transition this
     * store causes, if any (VM and HW-register backends).
     */
    virtual DebugAction
    onStore(const MicroOp &op)
    {
        return {};
    }

    /** A source-statement boundary was reached (single-stepping). */
    virtual DebugAction
    onStatement(Addr pc)
    {
        return {};
    }

    /**
     * A TRAP/CTRAP-taken instruction executed (DISE and binary-rewriting
     * backends reach the debugger this way). The monitor classifies it
     * and records the user-visible event.
     */
    virtual DebugAction
    onTrap(const MicroOp &op)
    {
        return {TransitionKind::User};
    }
};

} // namespace dise

#endif // DISE_CPU_MICROOP_HH
