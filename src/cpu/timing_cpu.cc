#include "cpu/timing_cpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dise {

TimingCpu::TimingCpu(ArchState &arch, MainMemory &mem, DiseEngine *engine,
                     StreamEnv env, TimingConfig cfg)
    : arch_(arch), stream_(arch, mem, engine, env), cfg_(cfg),
      memSys_(cfg.mem), bpred_(cfg.bpred)
{
    DISE_ASSERT(cfg_.robSize > 0 && cfg_.rsSize > 0 && cfg_.width > 0,
                "bad pipeline configuration");
    rob_.resize(cfg_.robSize);
    if (cfg_.opRefs) {
        pool_.resize(cfg_.robSize + 2);
        freeSlots_.reserve(pool_.size());
        for (int i = static_cast<int>(pool_.size()) - 1; i > 0; --i)
            freeSlots_.push_back(i);
        pendingSlot_ = 0;
    } else {
        opStore_.resize(cfg_.robSize);
    }
    std::fill(std::begin(renameMap_), std::end(renameMap_), -1);
}

void
TimingCpu::classifyControl(MicroOp &op)
{
    // Methodology: user-bound debugger transitions are free. Drop the
    // serializing flush for traps that reach the user.
    if (op.debug.kind == TransitionKind::User &&
        op.flush == FlushClass::Serialize && !op.isHalt) {
        op.flush = FlushClass::None;
    }

    // Multithreaded handler execution: DISE function call/return run on
    // a second context, eliminating their pipeline flushes.
    if (cfg_.mtHandlers && op.flush == FlushClass::DiseTransfer &&
        (op.inst.op == Opcode::D_CALL || op.inst.op == Opcode::D_CCALL ||
         op.inst.op == Opcode::D_RET)) {
        op.flush = FlushClass::None;
    }

    if (!op.isCtrl || op.fromExpansion)
        return;

    // Conventional control: fetched and therefore predicted.
    Opcode o = op.inst.op;
    if (op.inst.isCondBranch()) {
        bool pred = bpred_.predictDirection(op.pc);
        if (pred != op.taken)
            op.flush = FlushClass::Mispredict;
        bpred_.update(op.pc, op.taken, op.taken ? op.target : 0, true);
    } else if (o == Opcode::BSR) {
        bpred_.pushRas(op.pc + 4);
    } else if (o == Opcode::BR) {
        // Direct unconditional: target computable at fetch; free.
    } else if (o == Opcode::JSR || o == Opcode::JMP) {
        Addr predTarget = bpred_.predictTarget(op.pc);
        if (o == Opcode::JSR)
            bpred_.pushRas(op.pc + 4);
        if (predTarget != op.target)
            op.flush = FlushClass::Mispredict;
        bpred_.update(op.pc, true, op.target, false);
    } else if (o == Opcode::RET) {
        Addr predTarget = bpred_.popRas();
        if (predTarget != op.target)
            op.flush = FlushClass::Mispredict;
    }
}

bool
TimingCpu::sourcesReady(const RobEntry &e, uint64_t now) const
{
    for (int j = 0; j < 2; ++j) {
        int p = e.prod[j];
        if (p < 0)
            continue;
        const RobEntry &prod = rob_[p];
        if (prod.state == SlotState::Free || prod.op->seq != e.prodSeq[j])
            continue; // producer already retired
        if (prod.state != SlotState::Done || prod.doneCycle > now)
            return false;
    }
    return true;
}

bool
TimingCpu::olderStoresAddrKnown(int slot, uint64_t now) const
{
    if (cfg_.robCursors) {
        // Only in-flight stores matter; walk them oldest-first and
        // stop at the first one younger than the load.
        int age = robAge(slot);
        for (int s : storeSlots_) {
            if (robAge(s) >= age)
                return true;
            const RobEntry &e = rob_[s];
            if (e.state != SlotState::Done || e.doneCycle > now)
                return false;
        }
        return true;
    }
    for (int i = 0; i < robCount_; ++i) {
        int s = (robHead_ + i) % static_cast<int>(cfg_.robSize);
        if (s == slot)
            return true;
        const RobEntry &e = rob_[s];
        if (e.op->isStoreOp() &&
            (e.state != SlotState::Done || e.doneCycle > now))
            return false;
    }
    return true;
}

int
TimingCpu::forwardingStore(int slot) const
{
    const MicroOp &load = *rob_[slot].op;
    Addr lo = load.effAddr;
    Addr hi = lo + load.memBytes;
    if (cfg_.robCursors) {
        // Youngest older store first: walk the store ring backward,
        // skipping stores at or past the load's position.
        int age = robAge(slot);
        for (auto it = storeSlots_.rbegin(); it != storeSlots_.rend();
             ++it) {
            if (robAge(*it) >= age)
                continue;
            const RobEntry &e = rob_[*it];
            Addr slo = e.op->effAddr;
            Addr shi = slo + e.op->memBytes;
            if (slo < hi && lo < shi)
                return *it;
        }
        return -1;
    }
    // Scan older entries youngest-first.
    int offset = -1;
    for (int i = 0; i < robCount_; ++i) {
        int s = (robHead_ + i) % static_cast<int>(cfg_.robSize);
        if (s == slot) {
            offset = i;
            break;
        }
    }
    for (int i = offset - 1; i >= 0; --i) {
        int s = (robHead_ + i) % static_cast<int>(cfg_.robSize);
        const RobEntry &e = rob_[s];
        if (!e.op->isStoreOp())
            continue;
        Addr slo = e.op->effAddr;
        Addr shi = slo + e.op->memBytes;
        if (slo < hi && lo < shi)
            return s;
    }
    return -1;
}

void
TimingCpu::retireRenameRefs(int slot)
{
    for (unsigned r = 0; r < NumLogicalRegs; ++r)
        if (renameMap_[r] == slot)
            renameMap_[r] = -1;
}

RunStats
TimingCpu::run(const RunLimits &lim)
{
    RunStats stats;
    uint64_t now = 0;

    for (;;) {
        bool activity = false;
        portUsed_ = aluUsed_ = mulUsed_ = issuedThisCycle_ = 0;

        // ------------------------------------------------ commit stage
        unsigned committed = 0;
        while (committed < cfg_.width && robCount_ > 0) {
            RobEntry &e = rob_[robHead_];
            if (e.state != SlotState::Done || e.doneCycle > now)
                break;
            if (commitStallUntil_ > now)
                break;
            const MicroOp &op = *e.op;

            // A spurious debugger transition flushes and stalls for the
            // full round-trip before the op can retire.
            if (op.debug.spurious() && !e.stallCharged) {
                e.stallCharged = true;
                commitStallUntil_ = now + cfg_.transitionCost;
                stats.transitionStallCycles += cfg_.transitionCost;
                frontResumeCycle_ = std::max(
                    frontResumeCycle_, commitStallUntil_ + cfg_.frontDepth);
                frontBlocked_ = false;
                lastFetchLine_ = ~uint64_t{0};
                activity = true;
                break;
            }

            if (op.isStoreOp()) {
                if (portUsed_ >= cfg_.cachePorts)
                    break;
                ++portUsed_;
                memSys_.dataAccess(op.effAddr, true, now);
            }

            switch (op.debug.kind) {
              case TransitionKind::User:
                ++stats.transitionsUser;
                break;
              case TransitionKind::SpuriousAddress:
                ++stats.transitionsSpuriousAddr;
                break;
              case TransitionKind::SpuriousValue:
                ++stats.transitionsSpuriousValue;
                break;
              case TransitionKind::SpuriousPredicate:
                ++stats.transitionsSpuriousPred;
                break;
              case TransitionKind::None:
                break;
            }

            if (op.flush == FlushClass::Serialize) {
                ++stats.serializeFlushes;
                frontResumeCycle_ = std::max(frontResumeCycle_,
                                             now + 1 + cfg_.frontDepth);
                frontBlocked_ = false;
                lastFetchLine_ = ~uint64_t{0};
            } else if (op.debug.spurious()) {
                frontBlocked_ = false;
            } else if (op.flush == FlushClass::Mispredict) {
                ++stats.mispredictFlushes;
            } else if (op.flush == FlushClass::DiseTransfer) {
                ++stats.diseFlushes;
            }

            ++stats.microOps;
            if (op.isAppInst()) {
                ++stats.appInsts;
                if (op.isStoreOp())
                    ++stats.stores;
                if (op.isLoadOp())
                    ++stats.loads;
            } else if (op.inHandler) {
                ++stats.handlerOps;
            } else {
                ++stats.expansionOps;
            }

            bool wasHalt = op.isHalt;
            HaltReason hr = op.haltReason;
            retireRenameRefs(robHead_);
            if (op.isStoreOp() && !storeSlots_.empty() &&
                storeSlots_.front() == robHead_)
                storeSlots_.pop_front();
            if (issueSkip_ > 0)
                --issueSkip_; // offsets shift as the head advances
            e.state = SlotState::Free;
            if (cfg_.opRefs)
                freeSlots_.push_back(
                    static_cast<int>(e.op - pool_.data()));
            robHead_ = (robHead_ + 1) % static_cast<int>(cfg_.robSize);
            --robCount_;
            ++committed;
            activity = true;

            if (wasHalt) {
                stats.cycles = now + 1;
                stats.halt = hr;
                stats.faultMessage = stream_.faultMessage();
                return stats;
            }
        }

        // ------------------------------------------------- issue stage
        // With cursors: start past the head-side prefix of entries
        // that already issued, and stop once every waiting entry has
        // been seen — the common full-window case (a long-latency op
        // at the head, everything behind it done) costs O(waiting)
        // instead of O(robSize).
        unsigned waiting = rsCount_;
        for (int i = cfg_.robCursors ? issueSkip_ : 0;
             i < robCount_ && issuedThisCycle_ < cfg_.width &&
             (!cfg_.robCursors || waiting > 0);
             ++i) {
            int slot = (robHead_ + i) % static_cast<int>(cfg_.robSize);
            RobEntry &e = rob_[slot];
            if (e.state != SlotState::Dispatched) {
                if (cfg_.robCursors && i == issueSkip_)
                    ++issueSkip_;
                continue;
            }
            --waiting;
            if (e.dispatchCycle >= now)
                continue;
            if (!sourcesReady(e, now))
                continue;

            const MicroOp &op = *e.op;
            uint64_t done;
            if (op.isLoadOp()) {
                if (!olderStoresAddrKnown(slot, now))
                    continue;
                int fwd = forwardingStore(slot);
                if (fwd >= 0) {
                    done = now + 2; // AGU + store-queue forward
                } else {
                    if (portUsed_ >= cfg_.cachePorts)
                        continue;
                    ++portUsed_;
                    uint64_t lat =
                        memSys_.dataAccess(op.effAddr, false, now);
                    done = now + 1 + lat;
                }
            } else if (op.inst.cls() == OpClass::IntMul) {
                if (mulUsed_ >= 1)
                    continue;
                ++mulUsed_;
                done = now + cfg_.mulLatency;
            } else {
                if (aluUsed_ >= cfg_.intAlus)
                    continue;
                ++aluUsed_;
                done = now + 1;
            }

            e.state = SlotState::Done;
            e.doneCycle = done;
            --rsCount_;
            ++issuedThisCycle_;
            activity = true;

            if (op.flush == FlushClass::Mispredict ||
                op.flush == FlushClass::DiseTransfer) {
                frontResumeCycle_ = std::max(frontResumeCycle_,
                                             done + cfg_.frontDepth);
                frontBlocked_ = false;
                lastFetchLine_ = ~uint64_t{0};
            }
        }

        // ----------------------------------------------- deliver stage
        if (!frontBlocked_ && now >= frontResumeCycle_ && !streamDone_) {
            unsigned delivered = 0;
            bool groupEnd = false;
            while (delivered < cfg_.width && !groupEnd && !frontBlocked_) {
                if (lim.maxAppInsts &&
                    deliveredAppInsts_ >= lim.maxAppInsts) {
                    streamDone_ = true;
                    break;
                }
                // With opRefs the stream decodes straight into the
                // pending pool slot; no staging copy exists.
                MicroOp &op =
                    cfg_.opRefs ? pool_[pendingSlot_] : pending_;
                if (!havePending_) {
                    if (!stream_.next(op)) {
                        streamDone_ = true;
                        break;
                    }
                    havePending_ = true;
                    classifyControl(op);
                }

                if (!op.fromExpansion) {
                    uint64_t line =
                        op.pc / memSys_.config().l1i.lineBytes;
                    if (line != lastFetchLine_) {
                        uint64_t lat = memSys_.fetchAccess(op.pc, now);
                        lastFetchLine_ = line;
                        if (lat > 0) {
                            frontResumeCycle_ = now + lat;
                            activity = true;
                            break;
                        }
                    }
                }

                // Nops are extracted at no simulated cost (paper §5).
                if (op.inst.op == Opcode::NOP &&
                    op.flush == FlushClass::None &&
                    !op.debug.transitions()) {
                    ++stats.microOps;
                    if (op.isAppInst()) {
                        ++stats.appInsts;
                        ++deliveredAppInsts_;
                    } else if (op.inHandler) {
                        ++stats.handlerOps;
                    } else {
                        ++stats.expansionOps;
                    }
                    havePending_ = false;
                    activity = true;
                    continue;
                }

                if (robCount_ >= static_cast<int>(cfg_.robSize) ||
                    rsCount_ >= cfg_.rsSize)
                    break;

                int slot = (robHead_ + robCount_) %
                           static_cast<int>(cfg_.robSize);
                RobEntry &e = rob_[slot];
                if (cfg_.opRefs) {
                    // Ownership of the pending slot transfers to the
                    // ROB entry; the next decode gets a free slot.
                    e.op = &pool_[pendingSlot_];
                    DISE_ASSERT(!freeSlots_.empty(),
                                "micro-op pool exhausted");
                    pendingSlot_ = freeSlots_.back();
                    freeSlots_.pop_back();
                } else {
                    // Faithful to the pre-refs dispatch: the entry's
                    // op storage was default-constructed (RobEntry{})
                    // and then overwritten with the staged copy.
                    opStore_[slot] = MicroOp{};
                    opStore_[slot] = op;
                    e.op = &opStore_[slot];
                }
                e.state = SlotState::Dispatched;
                e.dispatchCycle = now;
                e.doneCycle = 0;
                e.prod[0] = e.prod[1] = -1;
                e.prodSeq[0] = e.prodSeq[1] = 0;
                e.stallCharged = false;

                SrcRegs srcs = srcRegs(op.inst);
                for (int j = 0; j < 2; ++j) {
                    RegId r = srcs.r[j];
                    if (!r.valid() || r.isZero())
                        continue;
                    int p = renameMap_[r.flat()];
                    if (p >= 0 && rob_[p].state != SlotState::Free) {
                        e.prod[j] = p;
                        e.prodSeq[j] = rob_[p].op->seq;
                    }
                }
                RegId dst = dstReg(op.inst);
                if (dst.valid() && !dst.isZero())
                    renameMap_[dst.flat()] = slot;

                if (op.isStoreOp())
                    storeSlots_.push_back(slot);
                ++robCount_;
                ++rsCount_;
                ++delivered;
                activity = true;
                if (op.isAppInst())
                    ++deliveredAppInsts_;

                if (op.flush != FlushClass::None || op.debug.spurious())
                    frontBlocked_ = true;
                if (op.isCtrl && op.taken)
                    groupEnd = true;
                if (op.isHalt)
                    streamDone_ = true;
                havePending_ = false;
            }
        }

        // ------------------------------------------------ end of cycle
        if (robCount_ == 0 && streamDone_) {
            stats.cycles = now;
            stats.halt = stream_.halted() ? stream_.haltReason()
                                          : HaltReason::InstLimit;
            if (stats.halt == HaltReason::None)
                stats.halt = HaltReason::InstLimit;
            stats.faultMessage = stream_.faultMessage();
            return stats;
        }
        if (lim.maxCycles && now >= lim.maxCycles) {
            stats.cycles = now;
            stats.halt = HaltReason::CycleLimit;
            return stats;
        }

        if (activity) {
            ++now;
            continue;
        }

        // Nothing happened: fast-forward to the next event.
        uint64_t next = ~uint64_t{0};
        auto cand = [&](uint64_t c) {
            if (c > now)
                next = std::min(next, c);
        };
        if (commitStallUntil_ > now)
            cand(commitStallUntil_);
        if (!frontBlocked_ && !streamDone_)
            cand(frontResumeCycle_);
        for (int i = 0; i < robCount_; ++i) {
            int s = (robHead_ + i) % static_cast<int>(cfg_.robSize);
            const RobEntry &e = rob_[s];
            if (e.state == SlotState::Done)
                cand(e.doneCycle);
        }
        if (next == ~uint64_t{0}) {
            // All in-flight work is ready but structurally blocked;
            // advance one cycle.
            bool anyInflight = robCount_ > 0;
            if (!anyInflight)
                panic("pipeline deadlock: empty ROB with no events at "
                      "cycle ", now);
            ++now;
        } else {
            now = next;
        }
    }
}

} // namespace dise
