/**
 * @file
 * gcc regclass kernel.
 *
 * Models the per-insn operand-classification loop: an indirect dispatch
 * over many distinct handler blocks (large static code footprint, the
 * paper's Figure 5 worst case for binary rewriting), each updating
 * register-class cost accumulators. Calibration targets: IPC ~1.90
 * (indirect-branch mispredictions and a near-L1-capacity instruction
 * working set), store density ~9.7%, a RANGE watchpoint (the cost
 * array) written by ~8% of stores, and cool scalars. The Figure 6
 * multi-watchpoint set places its fifth scalar on the cost-array page
 * to reproduce the VM collapse; the sixth lives on the same page as
 * the fifth so that watching it converts previously-spurious traps to
 * user transitions (the paper's 5-to-8 anomaly).
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildGcc(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "gcc";
    w.function = "regclass";

    const uint64_t insns = 7000ull * params.scale;
    constexpr unsigned NumBlocks = 288;
    // regclass has a large -O0 frame; the interesting consequence is
    // that its frame locals (WARM2/COLD) sit on a different stack page
    // from the per-insn spill slots, so VM protection on them is cheap
    // (the paper's "slightly outperform DISE" case in Section 5.2).
    constexpr unsigned FrameBytes = 8064;
    constexpr unsigned Warm2Off = 4032;
    constexpr unsigned ColdOff = 4072;

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.align(4096);
    a.label("insn_codes"); // pseudo instruction stream
    a.space(8192);
    a.align(4096);
    a.label("op_costs"); // RANGE: register-class costs, 1KB
    a.space(1024);
    // Figure 6 watchpoints five and six share the hot cost page.
    a.label("wp_m0");
    a.quad(0);
    a.label("wp_m1");
    a.quad(0);
    a.align(4096);
    a.label("result_buf");
    a.space(8192);
    a.align(4096);
    a.label("wp_hot");
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot");
    a.align(4096);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("dispatch_table");
    for (unsigned b = 0; b < NumBlocks; ++b)
        a.quadLabel("blk" + std::to_string(b));
    a.align(4096);
    for (int i = 2; i < 12; ++i) {
        a.label("wp_m" + std::to_string(i));
        a.quad(0);
        a.space(56);
    }

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);
    a.la(s0, "insn_codes");
    a.la(s1, "op_costs");
    a.la(s2, "result_buf");
    a.la(s3, "dispatch_table");
    a.lda(s4, 0, zero); // i
    a.li(s5, insns);

    // Initialize the pseudo instruction stream with an LCG.
    a.stmt(2);
    a.li(t0, params.seed * 2 + 1);
    a.li(t1, 1103515245);
    a.lda(t2, 0, zero);
    a.label("initloop");
    a.mulq(t0, t1, t0);
    a.addq(t0, 12345 & 0xff, t0);
    a.srl(t0, 9, t3);
    a.addq(s0, t2, t4);
    a.stb(t3, 0, t4);
    a.addq(t2, 1, t2);
    a.li(t5, 8192);
    a.cmplt(t2, t5, t5);
    a.bne(t5, "initloop");

    a.label("insnloop");
    a.stmt(10);
    // code = insn_codes[(i >> 2) & 8191]: insn patterns arrive in short
    // runs, so the dispatch target repeats briefly (regclass-like
    // locality; the indirect branch still mispredicts at run starts).
    a.srl(s4, 2, t0);
    a.li(t1, 8191);
    a.and_(t0, t1, t0);
    a.addq(s0, t0, t0);
    a.ldb(t0, 0, t0); // code
    a.stmt(11);
    // dispatch: a phase-rotated window over the handler table keeps a
    // ~16KB instruction working set live at a time.
    a.and_(t0, 127, t1);
    a.srl(s4, 10, t2);
    a.and_(t2, 3, t2);
    a.mulq(t2, 40, t2);
    a.addq(t1, t2, t1);
    a.sll(t1, 3, t1);
    a.addq(s3, t1, t1);
    a.ldq(t1, 0, t1);
    a.jmp(t1);

    // Handler blocks: distinct shift/mask/arith signatures per block.
    for (unsigned b = 0; b < NumBlocks; ++b) {
        a.label("blk" + std::to_string(b));
        a.stmt(100 + static_cast<int>(b));
        // Unique per-block constant work on the insn code (t0).
        uint8_t k1 = static_cast<uint8_t>(17 + (b * 7) % 200);
        uint8_t k2 = static_cast<uint8_t>(3 + (b * 13) % 60);
        uint8_t sh = static_cast<uint8_t>(1 + b % 23);
        a.mulq(t0, k1, t3);
        a.xor_(t3, k2, t3);
        a.sll(t3, sh % 7, t4);
        a.srl(t3, (sh % 5) + 1, t5);
        a.addq(t4, t5, t4);
        a.bic(t4, k2, t5);
        a.cmplt(t5, t3, t6);
        a.addq(t6, t4, t6);
        switch (b % 4) {
          case 0:
            a.xor_(t6, t0, t6);
            a.sll(t6, 2, t7);
            a.addq(t6, t7, t6);
            break;
          case 1:
            a.bis(t6, k1, t6);
            a.srl(t6, 1, t6);
            break;
          case 2:
            a.subq(t6, t0, t6);
            a.and_(t6, 127, t7);
            a.addq(t6, t7, t6);
            break;
          case 3:
            a.mulq(t6, 3, t6);
            a.xor_(t6, t0, t6);
            break;
        }
        // Spill the intermediates (stack traffic, -O0 flavor).
        a.stq(t6, 64, sp);
        a.stq(t3, 72, sp);
        a.stmt(200 + static_cast<int>(b));
        // result_buf[i & 1023 quads] = classification
        a.li(t7, 1023);
        a.and_(s4, t7, t7);
        a.sll(t7, 3, t7);
        a.addq(s2, t7, t7);
        a.stq(t6, 0, t7);
        // A quarter of the handlers update the cost array (RANGE).
        if (b % 4 == 0) {
            a.and_(t6, 127, t7);
            a.sll(t7, 3, t7);
            a.addq(s1, t7, t7);
            a.ldq(t8, 0, t7);
            a.addq(t8, 1, t8);
            a.stq(t8, 0, t7);
        }
        a.br("blkdone");
    }

    a.label("blkdone");
    a.stmt(20);
    // HOT every 64 insns; the stored value is code&1 (about half of
    // the writes are silent, per the paper's Section 5.1 observation).
    a.and_(s4, 63, t7);
    a.bne(t7, "skip_hot");
    a.and_(t0, 1, t7);
    a.la(t8, "wp_hot");
    a.stq(t7, 0, t8);
    a.label("skip_hot");
    a.stmt(21);
    // WARM1 every 128 insns.
    a.li(t7, 127);
    a.and_(s4, t7, t7);
    a.bne(t7, "skip_warm1");
    a.la(t8, "wp_warm1");
    a.ldq(t9, 0, t8);
    a.addq(t9, 1, t9);
    a.stq(t9, 0, t8);
    // wp_m1 (unwatched at five watchpoints) shares the cost page.
    a.la(t8, "wp_m1");
    a.ldq(t9, 0, t8);
    a.addq(t9, 1, t9);
    a.stq(t9, 0, t8);
    a.label("skip_warm1");
    a.stmt(22);
    a.addq(s4, 1, s4);
    a.cmplt(s4, s5, t7);
    a.bne(t7, "insnloop");

    // WARM2 and COLD: single writes at the end (frame locals).
    a.stmt(30);
    a.stq(s4, Warm2Off, sp);
    a.stq(s4, ColdOff, sp);
    a.mov(s4, a0);
    a.syscall(SysMark);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = layout::StackTop - FrameBytes + ColdOff;
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("op_costs");
    w.rangeLen = 1024;
    w.multiAddrs.push_back(w.program.symbol("wp_m0"));
    w.multiAddrs.push_back(w.program.symbol("wp_m1"));
    for (int i = 2; i < 12; ++i)
        w.multiAddrs.push_back(
            w.program.symbol("wp_m" + std::to_string(i)));
    return w;
}

} // namespace dise
