#include "workloads/workload.hh"

#include "common/logging.hh"

namespace dise {

const char *
watchSelName(WatchSel sel)
{
    switch (sel) {
      case WatchSel::HOT: return "HOT";
      case WatchSel::WARM1: return "WARM1";
      case WatchSel::WARM2: return "WARM2";
      case WatchSel::COLD: return "COLD";
      case WatchSel::INDIRECT: return "INDIRECT";
      case WatchSel::RANGE: return "RANGE";
    }
    return "?";
}

WatchSel
watchSelFromName(const std::string &name)
{
    for (WatchSel s :
         {WatchSel::HOT, WatchSel::WARM1, WatchSel::WARM2, WatchSel::COLD,
          WatchSel::INDIRECT, WatchSel::RANGE}) {
        if (name == watchSelName(s))
            return s;
    }
    fatal("unknown watchpoint selector '", name, "'");
}

WatchSpec
Workload::watch(WatchSel sel) const
{
    switch (sel) {
      case WatchSel::HOT:
        return WatchSpec::scalar("HOT", hotAddr, 8);
      case WatchSel::WARM1:
        return WatchSpec::scalar("WARM1", warm1Addr, 8);
      case WatchSel::WARM2:
        return WatchSpec::scalar("WARM2", warm2Addr, 8);
      case WatchSel::COLD:
        return WatchSpec::scalar("COLD", coldAddr, 8);
      case WatchSel::INDIRECT:
        return WatchSpec::indirect("INDIRECT", ptrAddr, 8);
      case WatchSel::RANGE:
        return WatchSpec::range("RANGE", rangeBase, rangeLen);
    }
    fatal("bad watch selector");
}

std::vector<WatchSpec>
Workload::multiWatch(unsigned n) const
{
    std::vector<WatchSpec> out;
    std::vector<Addr> pool = {hotAddr, warm1Addr, warm2Addr, coldAddr};
    pool.insert(pool.end(), multiAddrs.begin(), multiAddrs.end());
    DISE_ASSERT(n <= pool.size(), "workload '", name, "' provides only ",
                pool.size(), " multi-watch scalars");
    for (unsigned i = 0; i < n; ++i)
        out.push_back(WatchSpec::scalar("W" + std::to_string(i), pool[i],
                                        8));
    return out;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "crafty", "gcc", "mcf", "twolf", "vortex",
    };
    return names;
}

Workload
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "bzip2")
        return buildBzip2(params);
    if (name == "crafty")
        return buildCrafty(params);
    if (name == "gcc")
        return buildGcc(params);
    if (name == "mcf")
        return buildMcf(params);
    if (name == "twolf")
        return buildTwolf(params);
    if (name == "vortex")
        return buildVortex(params);
    fatal("unknown workload '", name, "'");
}

} // namespace dise
