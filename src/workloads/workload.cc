#include "workloads/workload.hh"

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"

namespace dise {

const char *
watchSelName(WatchSel sel)
{
    switch (sel) {
      case WatchSel::HOT: return "HOT";
      case WatchSel::WARM1: return "WARM1";
      case WatchSel::WARM2: return "WARM2";
      case WatchSel::COLD: return "COLD";
      case WatchSel::INDIRECT: return "INDIRECT";
      case WatchSel::RANGE: return "RANGE";
    }
    return "?";
}

WatchSel
watchSelFromName(const std::string &name)
{
    for (WatchSel s :
         {WatchSel::HOT, WatchSel::WARM1, WatchSel::WARM2, WatchSel::COLD,
          WatchSel::INDIRECT, WatchSel::RANGE}) {
        if (name == watchSelName(s))
            return s;
    }
    fatal("unknown watchpoint selector '", name, "'");
}

WatchSpec
Workload::watch(WatchSel sel) const
{
    switch (sel) {
      case WatchSel::HOT:
        return WatchSpec::scalar("HOT", hotAddr, 8);
      case WatchSel::WARM1:
        return WatchSpec::scalar("WARM1", warm1Addr, 8);
      case WatchSel::WARM2:
        return WatchSpec::scalar("WARM2", warm2Addr, 8);
      case WatchSel::COLD:
        return WatchSpec::scalar("COLD", coldAddr, 8);
      case WatchSel::INDIRECT:
        return WatchSpec::indirect("INDIRECT", ptrAddr, 8);
      case WatchSel::RANGE:
        return WatchSpec::range("RANGE", rangeBase, rangeLen);
    }
    fatal("bad watch selector");
}

std::vector<WatchSpec>
Workload::multiWatch(unsigned n) const
{
    std::vector<WatchSpec> out;
    std::vector<Addr> pool = {hotAddr, warm1Addr, warm2Addr, coldAddr};
    pool.insert(pool.end(), multiAddrs.begin(), multiAddrs.end());
    DISE_ASSERT(n <= pool.size(), "workload '", name, "' provides only ",
                pool.size(), " multi-watch scalars");
    for (unsigned i = 0; i < n; ++i)
        out.push_back(WatchSpec::scalar("W" + std::to_string(i), pool[i],
                                        8));
    return out;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "crafty", "gcc", "mcf", "twolf", "vortex",
    };
    return names;
}

Workload
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "bzip2")
        return buildBzip2(params);
    if (name == "crafty")
        return buildCrafty(params);
    if (name == "gcc")
        return buildGcc(params);
    if (name == "mcf")
        return buildMcf(params);
    if (name == "twolf")
        return buildTwolf(params);
    if (name == "vortex")
        return buildVortex(params);
    fatal("unknown workload '", name, "'");
}

Program
buildHeisenbugDemo()
{
    using namespace reg;
    Assembler a;
    a.data(layout::DataBase);
    a.label("table"); // 32 quads, legitimately written
    a.space(32 * 8);
    a.label("directory"); // 8 quads of precious metadata right after
    a.quad(0xd1);
    a.quad(0xd2);
    a.quad(0xd3);
    a.quad(0xd4);
    a.space(32);

    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "table");
    a.lda(t9, 0, zero);
    a.li(t11, 77);
    a.label("loop");
    a.stmt(1);
    // idx = lcg() % 33  -- the bug: 33, not 32.
    a.li(t2, 1103515245);
    a.mulq(t11, t2, t11);
    a.addq(t11, 57, t11);
    a.srl(t11, 16, t0);
    a.and_(t0, 255, t0);
    a.li(t1, 33);
    a.label("mod");
    a.cmplt(t0, t1, t2);
    a.bne(t2, "modok");
    a.subq(t0, t1, t0);
    a.br("mod");
    a.label("modok");
    a.sll(t0, 3, t0);
    a.addq(s0, t0, t0);
    a.label("the_store");
    a.stq(t11, 0, t0); // idx == 32 writes directory[0]!
    a.stmt(2);
    a.addq(t9, 1, t9);
    a.li(t1, 400);
    a.cmplt(t9, t1, t2);
    a.bne(t2, "loop");
    a.syscall(SysExit);
    return a.finish("main");
}

Program
buildToolDemo()
{
    using namespace reg;
    Assembler a;
    a.data(layout::DataBase);
    // The "heap": three 32-byte blocks at +0, +96 and +192 — spaced
    // so one block's redzone (32B either side) never overlaps another
    // block's data — plus untouched tail used for the invalid free.
    a.label("heap");
    a.space(1024);
    a.label("scratch"); // the memtrace hammer target
    a.quad(0);
    a.space(56);

    a.text(layout::TextBase);
    a.label("main");
    a.la(s0, "heap");

    // alloc A = heap+0 (freed cleanly, but stored past its end first).
    a.stmt(1);
    a.mov(s0, a0);
    a.li(a1, 32);
    a.syscall(SysAllocHint);
    a.mov(a0, s1);
    // alloc B = heap+96 (freed, then read: use-after-free).
    a.lda(a0, 96, s0);
    a.li(a1, 32);
    a.syscall(SysAllocHint);
    a.mov(a0, s2);
    // alloc C = heap+192 (never freed: the leak).
    a.lda(a0, 192, s0);
    a.li(a1, 32);
    a.syscall(SysAllocHint);
    a.mov(a0, s3);

    // Legitimate fill of A — in-bounds stores are clean.
    a.stmt(2);
    a.mov(s1, t0);
    a.li(t1, 4);
    a.label("fill");
    a.stq(t9, 0, t0);
    a.addq(t0, 8, t0);
    a.subq(t1, 1, t1);
    a.bne(t1, "fill");

    // Bug 1: store one quad past A's end, into the trailing redzone.
    // Early in the run on purpose — the hibernate test persists
    // mid-run with this finding already on the books.
    a.stmt(3);
    a.label("oob_store");
    a.stq(t9, 32, s1);

    // Same-address hammer: 64 read-modify-writes of one granule, the
    // redundancy memtrace's suppression table elides.
    a.stmt(4);
    a.la(t2, "scratch");
    a.li(t1, 64);
    a.label("hammer");
    a.ldq(t3, 0, t2);
    a.addq(t3, 1, t3);
    a.stq(t3, 0, t2);
    a.subq(t1, 1, t1);
    a.bne(t1, "hammer");

    // Bug 2: free B, then load from it.
    a.stmt(5);
    a.mov(s2, a0);
    a.syscall(SysFreeHint);
    a.label("uaf_load");
    a.ldq(t4, 0, s2);

    // Bug 3: free an address that was never allocated.
    a.stmt(6);
    a.lda(a0, 800, s0);
    a.syscall(SysFreeHint);

    // A is released properly (so exactly one block leaks: C).
    a.mov(s1, a0);
    a.syscall(SysFreeHint);

    // Bug 4: print C's address — an address value reaching an output
    // sink (addrleak). The second put is a benign untainted value.
    a.stmt(7);
    a.mov(s3, a0);
    a.syscall(SysPutInt);
    a.li(a0, 42);
    a.syscall(SysPutInt);

    a.syscall(SysExit); // leakcheck's end-of-run report fires here
    return a.finish("main");
}

} // namespace dise
