/**
 * @file
 * twolf uloop kernel.
 *
 * Simulated-annealing placement moves: pick two cells, evaluate the
 * wire-cost delta of swapping them, accept or reject on a data-
 * dependent threshold (branchy, ~IPC 1.87), and write back positions on
 * acceptance. Move evaluation dispatches over sixteen distinct move
 * handlers (medium code footprint). Store density ~13.7% including
 * per-iteration stack spills — which share a page with the COLD and
 * WARM2 frame locals, making twolf one of the paper's VM worst cases
 * for cold watchpoints. HOT is the running cost total, updated with a
 * quantized delta that is frequently zero (>50% silent stores).
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildTwolf(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "twolf";
    w.function = "uloop";

    const uint64_t iters = 14000ull * params.scale;
    constexpr unsigned NumCells = 1024; // x32B = 32KB: mostly L1
    constexpr unsigned CellShift = 5;
    constexpr unsigned NumMoves = 16;
    constexpr unsigned FrameBytes = 96;
    constexpr unsigned Warm2Off = 24;
    constexpr unsigned ColdOff = 48;
    constexpr unsigned SpillOff = 72; // same page as COLD/WARM2

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.align(4096);
    a.label("cells"); // cell[i]: {x, y, width, cost}
    a.space(static_cast<uint64_t>(NumCells) << CellShift);
    a.align(4096);
    a.label("wp_hot"); // running total cost
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot");
    a.align(4096);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("wp_range"); // per-row cost summary, 512 bytes
    a.space(512);
    a.align(4096);
    a.label("move_table");
    for (unsigned m = 0; m < NumMoves; ++m)
        a.quadLabel("move" + std::to_string(m));

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);
    a.la(s0, "cells");
    a.la(s1, "wp_hot");
    a.la(s2, "move_table");
    a.lda(s3, 0, zero); // accepted-move counter
    a.lda(s4, 0, zero); // i
    a.li(s5, iters);
    a.li(t11, params.seed * 4 + 1); // LCG state lives in t11

    // Initialize cell positions from the LCG.
    a.stmt(2);
    a.lda(t0, 0, zero);
    a.li(t1, NumCells);
    a.label("initloop");
    a.li(t2, 1103515245);
    a.mulq(t11, t2, t11);
    a.addq(t11, 12345 & 0xff, t11);
    a.sll(t0, CellShift, t3);
    a.addq(s0, t3, t3);
    a.srl(t11, 16, t4);
    a.li(t5, 1023);
    a.and_(t4, t5, t4);
    a.stq(t4, 0, t3); // x
    a.srl(t11, 32, t4);
    a.and_(t4, t5, t4);
    a.stq(t4, 8, t3); // y
    a.addq(t0, 1, t0);
    a.cmplt(t0, t1, t4);
    a.bne(t4, "initloop");

    a.label("moveloop");
    a.stmt(10);
    // Pick two cells and a move type from the LCG.
    a.li(t2, 1103515245);
    a.mulq(t11, t2, t11);
    a.addq(t11, 12345 & 0xff, t11);
    a.li(t3, NumCells - 1);
    a.srl(t11, 8, t0);
    a.and_(t0, t3, t0); // cell a index
    a.srl(t11, 24, t1);
    a.and_(t1, t3, t1); // cell b index
    a.stmt(11);
    a.sll(t0, CellShift, t4);
    a.addq(s0, t4, t4); // &cell[a]
    a.sll(t1, CellShift, t5);
    a.addq(s0, t5, t5); // &cell[b]
    a.ldq(t6, 0, t4);   // ax
    a.ldq(t7, 0, t5);   // bx
    a.stq(t6, SpillOff, sp); // spills (busy stack page, -O0 flavor)
    a.stq(t7, SpillOff + 8, sp);
    a.stmt(12);
    // Dispatch one of the move evaluators.
    a.srl(t11, 40, t8);
    a.and_(t8, NumMoves - 1, t8);
    a.sll(t8, 3, t8);
    a.addq(s2, t8, t8);
    a.ldq(t8, 0, t8);
    a.jmp(t8);

    for (unsigned m = 0; m < NumMoves; ++m) {
        a.label("move" + std::to_string(m));
        a.stmt(100 + static_cast<int>(m));
        uint8_t k = static_cast<uint8_t>(5 + m * 11);
        // delta = f_m(ax, bx): distinct arithmetic per move type.
        a.subq(t6, t7, t9);
        a.mulq(t9, k, t9);
        a.sra(t9, (m % 5) + 4, t9);
        if (m % 3 == 0) {
            a.ldq(t10, 8, t4); // ay
            a.subq(t9, t10, t9);
            a.sra(t9, 3, t9);
        } else if (m % 3 == 1) {
            a.xor_(t9, t6, t10);
            a.and_(t10, 15, t10);
            a.subq(t9, t10, t9);
        } else {
            a.addq(t9, t7, t9);
            a.sra(t9, 5, t9);
        }
        a.br("evaldone");
    }

    a.label("evaldone");
    a.stmt(20);
    a.stq(t9, SpillOff + 16, sp); // delta spill
    // Accept if the quantized delta clears a threshold: data-dependent
    // and biased toward rejection like a cool annealing schedule (the
    // classic hard-to-predict accept branch).
    a.addq(t9, 9, t10);
    a.bge(t10, "reject");
    // Accept: swap x coordinates and update cost.
    a.stq(t7, 0, t4);
    a.stq(t6, 0, t5);
    a.addq(s3, 1, s3);
    a.stmt(21);
    // HOT: a cost summary written every 16th accepted move; the value
    // only changes every 64 accepts, so three quarters of the stores
    // are silent.
    a.and_(s3, 15, t10);
    a.bne(t10, "skip_hot");
    a.srl(s3, 6, t2);
    a.stq(t2, 0, s1);
    a.label("skip_hot");
    a.stmt(22);
    // WARM1 every 64 accepted moves.
    a.and_(s3, 63, t10);
    a.bne(t10, "reject");
    a.la(t10, "wp_warm1");
    a.ldq(t2, 0, t10);
    a.addq(t2, 1, t2);
    a.stq(t2, 0, t10);
    a.label("reject");
    a.stmt(23);
    // RANGE row summary every 128 iterations.
    a.li(t10, 127);
    a.and_(s4, t10, t10);
    a.bne(t10, "skip_range");
    a.srl(s4, 7, t10);
    a.and_(t10, 63, t10);
    a.sll(t10, 3, t10);
    a.la(t2, "wp_range");
    a.addq(t2, t10, t2);
    a.stq(s4, 0, t2);
    a.label("skip_range");
    a.stmt(24);
    // WARM2 every 512 iterations; COLD every 1024 (both frame locals
    // on the same busy stack page as the spill slot).
    a.li(t10, 511);
    a.and_(s4, t10, t10);
    a.bne(t10, "skip_warm2");
    a.ldq(t2, Warm2Off, sp);
    a.addq(t2, 1, t2);
    a.stq(t2, Warm2Off, sp);
    a.label("skip_warm2");
    a.li(t10, 1023);
    a.and_(s4, t10, t10);
    a.bne(t10, "skip_cold");
    a.ldq(t2, ColdOff, sp);
    a.addq(t2, 1, t2);
    a.stq(t2, ColdOff, sp);
    a.label("skip_cold");
    a.stmt(25);
    a.addq(s4, 1, s4);
    a.cmplt(s4, s5, t10);
    a.bne(t10, "moveloop");

    a.stmt(30);
    a.mov(s3, a0);
    a.syscall(SysMark);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = layout::StackTop - FrameBytes + ColdOff;
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("wp_range");
    w.rangeLen = 512;
    return w;
}

} // namespace dise
