/**
 * @file
 * mcf write_circs kernel.
 *
 * Pointer-chasing over a multi-megabyte arc/node array, the paper's
 * memory-bound benchmark: two interleaved dependent load chains walk
 * pseudo-random permutations whose 2MB-per-chain footprint misses both
 * cache levels constantly, pinning IPC near 0.33 and masking most
 * instrumentation cost (the paper's HOT/mcf observation). Store density
 * ~16%; HOT is a flow-direction flag that rarely changes (>50% silent
 * stores); RANGE exists but is never written during the run.
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildMcf(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "mcf";
    w.function = "write_circs";

    const uint64_t iters = 15000ull * params.scale;
    constexpr unsigned NumNodes = 65536; // x64B = 4MB network
    constexpr unsigned NodeShift = 6;
    constexpr unsigned FrameBytes = 64;
    constexpr unsigned Warm2Off = 16;
    constexpr unsigned ColdOff = 32;

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.align(4096);
    a.label("nodes"); // node[i]: {next, flow, potential, pad...}
    {
        // The arc network is part of the input data set (the paper's
        // benchmark reads it from disk): a full-cycle pseudo-random
        // permutation whose hops land megabytes apart.
        std::vector<uint8_t> net(static_cast<size_t>(NumNodes)
                                 << NodeShift);
        const Addr base = layout::DataBase; // == &nodes after align
        // Four disjoint 16K-node regions, each its own full-cycle
        // permutation, so the four chase chains never share lines.
        constexpr uint64_t RegionNodes = NumNodes / 4;
        for (uint64_t r = 0; r < 4; ++r) {
            for (uint64_t j = 0; j < RegionNodes; ++j) {
                uint64_t nxt = (j + 6151) & (RegionNodes - 1);
                uint64_t idx = r * RegionNodes + j;
                uint64_t ptr =
                    base + ((r * RegionNodes + nxt) << NodeShift);
                for (int b = 0; b < 8; ++b)
                    net[(idx << NodeShift) + b] = (ptr >> (8 * b)) & 0xff;
            }
        }
        a.blob(std::move(net));
    }
    a.align(4096);
    a.label("wp_hot");
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot");
    a.align(4096);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("wp_range"); // never written during write_circs
    a.space(128);

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);
    a.la(s0, "nodes");
    a.la(s1, "wp_hot");
    a.lda(s4, 0, zero); // i
    a.li(s5, iters);

    // Four independent chains give the machine memory-level
    // parallelism (IPC ~0.33 rather than ~0.1).
    a.stmt(2);
    a.mov(s0, t0); // chain 0
    a.li(t2, static_cast<uint64_t>(NumNodes / 4) << NodeShift);
    a.addq(s0, t2, t1);  // chain 1
    a.addq(t1, t2, t9);  // chain 2
    a.addq(t9, t2, t10); // chain 3

    a.label("chainloop");
    a.stmt(10);
    a.ldq(t0, 0, t0); // p = p->next (dependent, cache-missing)
    a.ldq(t1, 0, t1);
    a.ldq(t9, 0, t9);
    a.ldq(t10, 0, t10);
    a.stmt(11);
    // flow computation and updates along the chains
    a.addq(s4, t0, t3);
    a.srl(t3, 4, t3);
    a.stq(t3, 8, t0); // flow
    a.xor_(t3, t1, t4);
    a.stq(t4, 16, t1); // potential
    a.addq(t9, t10, t4);
    a.srl(t4, 6, t4);
    a.stq(t4, 8, t9);
    a.subq(t10, t3, t5);
    a.and_(t5, 127, t5);
    a.stq(t5, 16, t10);
    // residual-capacity arithmetic (write_circs does real work too)
    a.mulq(t3, 3, t6);
    a.addq(t6, t4, t6);
    a.sra(t6, 2, t6);
    a.xor_(t6, t5, t6);
    a.cmplt(t6, t3, t7);
    a.addq(t7, t6, t7);
    a.stq(t7, 24, t0); // cost field
    a.stmt(12);
    // HOT: a flow-direction flag every iteration; the flag value is
    // almost always the same (silent stores dominate).
    a.and_(t3, 1, t5);
    a.cmplt(t5, 2, t5); // constant 1 in practice: silent
    a.stq(t5, 0, s1);
    a.stmt(13);
    // WARM1 every 32 iterations.
    a.and_(s4, 31, t5);
    a.bne(t5, "skip_warm1");
    a.la(t6, "wp_warm1");
    a.ldq(t7, 0, t6);
    a.addq(t7, 1, t7);
    a.stq(t7, 0, t6);
    a.label("skip_warm1");
    a.stmt(14);
    // WARM2 (frame local) every 256 iterations.
    a.li(t5, 255);
    a.and_(s4, t5, t5);
    a.bne(t5, "skip_warm2");
    a.ldq(t7, Warm2Off, sp);
    a.addq(t7, 1, t7);
    a.stq(t7, Warm2Off, sp);
    a.label("skip_warm2");
    a.stmt(15);
    a.addq(s4, 1, s4);
    a.cmplt(s4, s5, t5);
    a.bne(t5, "chainloop");

    a.stmt(20);
    a.stq(s4, ColdOff, sp); // COLD: once, at the very end
    a.addq(t0, t1, a0);
    a.addq(a0, t9, a0);
    a.addq(a0, t10, a0);
    a.syscall(SysMark);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = layout::StackTop - FrameBytes + ColdOff;
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("wp_range");
    w.rangeLen = 128;
    return w;
}

} // namespace dise
