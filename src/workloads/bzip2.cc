/**
 * @file
 * bzip2 generateMTFValues kernel.
 *
 * Move-to-front recoding of a pseudo-random block: for each input
 * symbol, rotate the front of the MTF list, emit the rank, and update
 * output counters. Calibration targets (paper Table 1/2): IPC ~2.45,
 * store density ~19.8%, HOT written on ~25% of stores with almost no
 * silent stores, WARM1 sharing a page with the hot output buffer (the
 * paper's VM worst case), COLD on a quiet page (the VM best case).
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildBzip2(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "bzip2";
    w.function = "generateMTFValues";

    const uint64_t iters = 16000ull * params.scale;
    constexpr unsigned FrameBytes = 64;
    constexpr unsigned Warm2Off = 16;
    // COLD lives on its own quiet data page (never written at runtime).

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.label("yy"); // MTF list, 256 bytes
    a.space(256);
    a.align(8);
    a.label("freq"); // rank frequency counters
    a.space(64 * 8);
    a.align(4096);
    a.label("block"); // input block (page of its own)
    a.space(4096);
    // Hot page: the MTF output buffer and WARM1 share this page, so a
    // VM watchpoint on WARM1 traps on every mtfout store.
    a.align(4096);
    a.label("mtfout");
    a.space(2048);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("wp_hot"); // hot page: only HOT and the pointer cell
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot"); // *p aliases HOT
    a.align(4096);
    a.label("wp_cold"); // quiet page
    a.quad(0);
    a.align(4096);
    a.label("wp_range"); // 64-byte structure, occasionally updated
    a.space(64);

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);

    // s0=block s1=yy s2=mtfout s3=freq s4=hot-value s5=iteration count
    a.la(s0, "block");
    a.la(s1, "yy");
    a.la(s2, "mtfout");
    a.la(s3, "freq");
    a.lda(s4, 0, zero);
    a.li(s5, iters);

    // Fill the block with LCG bytes; initialize the MTF list.
    a.stmt(2);
    a.li(t0, params.seed | 1);
    a.li(t1, 1103515245);
    a.lda(t2, 0, zero); // i
    a.label("initloop");
    a.mulq(t0, t1, t0);
    a.addq(t0, 12345 & 0xff, t0);
    a.srl(t0, 7, t3);
    a.addq(s0, t2, t4);
    a.stb(t3, 0, t4); // block[i] = lcg byte
    a.and_(t2, 255, t5);
    a.addq(s1, t5, t6);
    a.stb(t5, 0, t6); // yy[i & 255] = i & 255
    a.addq(t2, 1, t2);
    a.li(t7, 4096);
    a.cmplt(t2, t7, t7);
    a.bne(t7, "initloop");

    // Main MTF loop. t2 = i
    a.lda(t2, 0, zero);
    a.label("mtfloop");
    a.stmt(10);
    // sym = block[i & 4095]
    a.li(t7, 4095);
    a.and_(t2, t7, t3);
    a.addq(s0, t3, t3);
    a.ldb(t3, 0, t3); // sym
    a.stmt(11);
    // Rotate the first three MTF slots (straight-line, branch-free).
    a.ldb(t4, 0, s1);
    a.ldb(t5, 1, s1);
    a.ldb(t6, 2, s1);
    a.stb(t4, 1, s1);
    a.stb(t5, 2, s1);
    a.stb(t6, 3, s1);
    a.stb(t3, 0, s1); // yy[0] = sym
    a.stmt(12);
    // rank = sym & 15; emit into mtfout (hot buffer page)
    a.and_(t3, 15, t4);
    a.li(t7, 2047);
    a.and_(t2, t7, t5);
    a.addq(s2, t5, t5);
    a.stb(t4, 0, t5);
    a.stmt(13);
    // freq[rank] += 1
    a.sll(t4, 3, t6);
    a.addq(s3, t6, t6);
    a.ldq(t8, 0, t6);
    a.addq(t8, 1, t8);
    a.stq(t8, 0, t6);
    a.stmt(14);
    // hot accumulator: always changes (no silent stores)
    a.addq(s4, t4, s4);
    a.addq(s4, 1, s4);
    a.la(t9, "wp_hot");
    a.stq(s4, 0, t9);
    a.stmt(15);
    // WARM1 every 128 iterations (shares the mtfout page)
    a.and_(t2, 127, t6);
    a.bne(t6, "skip_warm1");
    a.la(t9, "wp_warm1");
    a.ldq(t8, 0, t9);
    a.addq(t8, 1, t8);
    a.stq(t8, 0, t9);
    a.label("skip_warm1");
    a.stmt(16);
    // RANGE structure every 256 iterations
    a.li(t7, 255);
    a.and_(t2, t7, t6);
    a.bne(t6, "skip_range");
    a.srl(t2, 8, t6);
    a.and_(t6, 7, t6);
    a.sll(t6, 3, t6);
    a.la(t9, "wp_range");
    a.addq(t9, t6, t9);
    a.stq(t2, 0, t9);
    a.label("skip_range");
    a.stmt(17);
    a.addq(t2, 1, t2);
    a.cmplt(t2, s5, t7);
    a.bne(t7, "mtfloop");

    // Epilogue: WARM2 written once; COLD never.
    a.stmt(20);
    a.stq(s4, Warm2Off, sp);
    a.lda(a0, 0, zero);
    a.syscall(SysMark); // checksum hook for tests
    a.mov(s4, a0);
    a.syscall(SysMark);
    a.stmt(21);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = w.program.symbol("wp_cold");
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("wp_range");
    w.rangeLen = 64;
    return w;
}

} // namespace dise
