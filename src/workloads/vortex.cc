/**
 * @file
 * vortex BMT_TraverseSets kernel.
 *
 * Object-database set traversal: walk sets of records, dispatching to
 * per-type validation routines through real calls (exercising the
 * return-address stack), updating record status bytes and per-set
 * bookkeeping. Calibration targets: IPC ~2.25, store density ~17.6%,
 * HOT (the traversal's current-set key) written on ~7% of stores and
 * silent for all but the first record of each set (>50% silent, the
 * paper's hardware-register pain point), very cool WARM/COLD/RANGE.
 * Larger static code footprint (many distinct validators) so binary
 * rewriting shows instruction-cache pressure in Figure 5. Provides the
 * Figure 6 multi-watchpoint set; the fifth scalar shares a page with
 * the per-set accounting array that every set updates.
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildVortex(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "vortex";
    w.function = "BMT_TraverseSets";

    const uint64_t sweeps = 40ull * params.scale;
    constexpr unsigned NumRecords = 1024; // x32B = 32KB (L1-friendly)
    constexpr unsigned RecShift = 5;
    constexpr unsigned RecsPerSet = 64;
    constexpr unsigned NumValidators = 40;
    constexpr unsigned FrameBytes = 96;
    constexpr unsigned Warm2Off = 24;
    constexpr unsigned ColdOff = 48;
    constexpr unsigned SpillOff = 64; // busy slot on the COLD page

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.align(4096);
    a.label("records"); // record: {key, type, status, link}
    a.space(static_cast<uint64_t>(NumRecords) << RecShift);
    a.align(4096);
    a.label("set_acct"); // per-set accounting, written every set
    a.space(2048);
    a.label("wp_m0"); // fifth Figure 6 watchpoint on the busy page
    a.quad(0);
    a.align(4096);
    a.label("wp_hot"); // current-set key
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot");
    a.align(4096);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("wp_range"); // schema descriptor, essentially read-only
    a.space(256);
    a.align(4096);
    a.label("validator_table");
    for (unsigned v = 0; v < NumValidators; ++v)
        a.quadLabel("val" + std::to_string(v));
    a.align(4096);
    for (int i = 1; i < 12; ++i) {
        a.label("wp_m" + std::to_string(i));
        a.quad(0);
        a.space(56);
    }

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);
    a.la(s0, "records");
    a.la(s1, "wp_hot");
    a.la(s2, "validator_table");
    a.la(s3, "set_acct");
    a.lda(s4, 0, zero); // sweep counter
    a.li(s5, sweeps);

    // Initialize record keys/types from the LCG.
    a.stmt(2);
    a.li(t11, params.seed * 8 + 5);
    a.lda(t0, 0, zero);
    a.li(t1, NumRecords);
    a.label("initloop");
    a.li(t2, 1103515245);
    a.mulq(t11, t2, t11);
    a.addq(t11, 12345 & 0xff, t11);
    a.sll(t0, RecShift, t3);
    a.addq(s0, t3, t3);
    a.srl(t11, 12, t4);
    a.stq(t4, 0, t3); // key
    a.srl(t0, 4, t4); // runs of 16 same-type records: the validator
    a.and_(t4, 63, t4); // dispatch is predictable within a run
    a.stq(t4, 8, t3); // type
    a.stq(zero, 16, t3); // status
    a.addq(t0, 1, t0);
    a.cmplt(t0, t1, t4);
    a.bne(t4, "initloop");

    a.label("sweeploop");
    a.stmt(10);
    a.lda(t0, 0, zero); // record index
    a.li(t1, NumRecords);
    a.label("recloop");
    a.stmt(11);
    // set id = record / RecsPerSet
    a.srl(t0, 6, t2); // set id
    a.sll(t0, RecShift, t3);
    a.addq(s0, t3, t3); // &record
    a.ldq(t4, 0, t3);   // key
    a.ldq(t5, 8, t3);   // type
    a.stmt(12);
    // HOT: the current-set key, rewritten for every fourth record but
    // changing only at set boundaries — ~94% silent stores.
    a.and_(t0, 3, t6);
    a.bne(t6, "skip_hot");
    a.stq(t2, 0, s1);
    a.label("skip_hot");
    // Record-update log (vortex writes object state back constantly).
    a.stq(t4, 24, t3);
    a.stmt(13);
    // Validate through a per-type routine (real call: RAS exercise).
    a.cmplt(t5, NumValidators, t6);
    a.bne(t6, "val_ok");
    a.subq(t5, NumValidators, t5);
    a.cmplt(t5, NumValidators, t6);
    a.bne(t6, "val_ok");
    a.lda(t5, 0, zero);
    a.label("val_ok");
    a.sll(t5, 3, t6);
    a.addq(s2, t6, t6);
    a.ldq(t6, 0, t6);
    a.jsr(ra, t6);
    a.stmt(14);
    // status byte: usually already 1 (silent record store)
    a.stb(v0, 16, t3);
    a.stmt(15);
    // Per-set accounting on the last record of each set.
    a.and_(t0, RecsPerSet - 1, t6);
    a.li(t7, RecsPerSet - 1);
    a.cmpeq(t6, t7, t6);
    a.beq(t6, "skip_acct");
    a.and_(t2, 255, t6);
    a.sll(t6, 3, t6);
    a.addq(s3, t6, t6);
    a.ldq(t7, 0, t6);
    a.addq(t7, 1, t7);
    a.stq(t7, 0, t6);
    a.label("skip_acct");
    a.stmt(16);
    a.addq(t0, 1, t0);
    a.cmplt(t0, t1, t6);
    a.bne(t6, "recloop");

    a.stmt(20);
    // WARM1 and WARM2 once per sweep.
    a.la(t6, "wp_warm1");
    a.ldq(t7, 0, t6);
    a.addq(t7, 1, t7);
    a.stq(t7, 0, t6);
    a.ldq(t7, Warm2Off, sp);
    a.addq(t7, 1, t7);
    a.stq(t7, Warm2Off, sp);
    a.stmt(21);
    a.addq(s4, 1, s4);
    a.cmplt(s4, s5, t6);
    a.bne(t6, "sweeploop");

    a.stmt(30);
    a.stq(s4, ColdOff, sp); // COLD once
    a.mov(s4, a0);
    a.syscall(SysMark);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    // Validator routines: distinct field checks per record type.
    for (unsigned v = 0; v < NumValidators; ++v) {
        a.label("val" + std::to_string(v));
        a.stmt(100 + static_cast<int>(v));
        uint8_t k1 = static_cast<uint8_t>(7 + v * 5);
        uint8_t k2 = static_cast<uint8_t>(1 + v % 31);
        // Spill to the frame (stack traffic near COLD).
        a.stq(t4, SpillOff, sp);
        a.srl(t4, k2 % 13, t8);
        a.xor_(t8, k1, t8);
        a.and_(t8, 63, t9);
        a.mulq(t9, k2, t9);
        a.addq(t8, t9, t8);
        switch (v % 4) {
          case 0:
            a.sll(t8, 2, t9);
            a.subq(t9, t8, t8);
            a.and_(t8, 127, t8);
            break;
          case 1:
            a.srl(t8, 3, t9);
            a.xor_(t8, t9, t8);
            break;
          case 2:
            a.addq(t8, k1, t8);
            a.and_(t8, 31, t8);
            a.mulq(t8, 5, t8);
            break;
          case 3:
            a.bic(t8, k2, t8);
            a.srl(t8, 1, t8);
            break;
        }
        a.cmplt(zero, t8, v0); // "valid" flag: almost always 1
        a.lda(t9, 1, zero);
        a.bis(v0, t9, v0);
        a.ret(ra);
    }

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = layout::StackTop - FrameBytes + ColdOff;
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("wp_range");
    w.rangeLen = 256;
    for (int i = 0; i < 12; ++i)
        w.multiAddrs.push_back(
            w.program.symbol("wp_m" + std::to_string(i)));
    return w;
}

} // namespace dise
