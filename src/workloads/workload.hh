/**
 * @file
 * Synthetic SPEC2000-integer kernels.
 *
 * The paper profiles one statically-large, long-running function per
 * benchmark (Table 1) and watches six expressions per benchmark
 * (Table 2). We cannot ship SPEC, so each kernel reimplements the
 * profiled function's algorithmic skeleton in our ISA and is calibrated
 * to the paper's measured properties: dynamic store density, IPC class
 * (ILP, branchiness, memory-boundedness), static code footprint, and
 * the six watchpoints' write frequencies and silent-store behavior.
 * DESIGN.md documents the substitution; tests/workloads_test.cc checks
 * the calibration bands.
 */

#ifndef DISE_WORKLOADS_WORKLOAD_HH
#define DISE_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "debug/watch.hh"

namespace dise {

/** The six watchpoints of Table 2. */
enum class WatchSel : uint8_t {
    HOT,      ///< frequently-written heap scalar
    WARM1,    ///< occasionally-written heap scalar
    WARM2,    ///< occasionally-written frame-local scalar
    COLD,     ///< rarely-written frame-local scalar
    INDIRECT, ///< *p, where p points at HOT's storage
    RANGE,    ///< a structure / small array
};

const char *watchSelName(WatchSel sel);
WatchSel watchSelFromName(const std::string &name);

/** Scale and tuning knobs. */
struct WorkloadParams
{
    /** Work multiplier; 1 gives a few hundred thousand instructions. */
    unsigned scale = 1;
    uint64_t seed = 12345;
};

/** A built workload: program image plus watchpoint metadata. */
struct Workload
{
    std::string name;     ///< benchmark name, e.g. "bzip2"
    std::string function; ///< profiled function it mimics
    Program program;

    /** Addresses for the standard six watchpoints. */
    WatchSpec watch(WatchSel sel) const;

    /** First @p n of the Figure 6 multi-watchpoint set (all scalars). */
    std::vector<WatchSpec> multiWatch(unsigned n) const;

    /** Statement count hint (for tests). */
    size_t stmtCount() const { return program.stmtBoundaries.size(); }

    // Resolved watchpoint addresses (filled by the builders).
    Addr hotAddr = 0;
    Addr warm1Addr = 0;
    Addr warm2Addr = 0;
    Addr coldAddr = 0;
    Addr ptrAddr = 0;       ///< the pointer cell for INDIRECT
    Addr rangeBase = 0;
    uint64_t rangeLen = 0;
    std::vector<Addr> multiAddrs; ///< extra scalars for Figure 6
};

/** @name Kernel builders */
///@{
Workload buildBzip2(const WorkloadParams &params = {});
Workload buildCrafty(const WorkloadParams &params = {});
Workload buildGcc(const WorkloadParams &params = {});
Workload buildMcf(const WorkloadParams &params = {});
Workload buildTwolf(const WorkloadParams &params = {});
Workload buildVortex(const WorkloadParams &params = {});
///@}

/** All benchmark names in the paper's presentation order. */
const std::vector<std::string> &workloadNames();

/** Build by name ("bzip2", "crafty", "gcc", "mcf", "twolf", "vortex"). */
/**
 * The heisenbug demo scenario shared by the example, the RSP demo
 * server, and the RSP tests: a 400-iteration loop whose modulo is off
 * by one, so an out-of-bounds store occasionally tramples
 * directory[0] just past the table. Symbols: "table", "directory",
 * "the_store"; statement markers included so the single-stepping
 * backend can observe it.
 */
Program buildHeisenbugDemo();

/**
 * The debug-tool demo scenario (src/tools/): a guest bump allocator
 * announcing blocks via SysAllocHint/SysFreeHint, with one seeded bug
 * per tool — an out-of-bounds store into a redzone ("oob_store"), a
 * use-after-free load ("uaf_load"), an invalid free, a leaked block,
 * and a block address printed to an output sink (addrleak). A
 * same-address hammer loop feeds memtrace's redundancy suppression
 * and the loops give coverage a real block map. Symbols: "heap",
 * "scratch", "oob_store", "uaf_load".
 */
Program buildToolDemo();

Workload buildWorkload(const std::string &name,
                       const WorkloadParams &params = {});

} // namespace dise

#endif // DISE_WORKLOADS_WORKLOAD_HH
