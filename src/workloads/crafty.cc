/**
 * @file
 * crafty InitializeAttackBoards kernel.
 *
 * Chess bitboard table initialization: for every square, build rook and
 * bishop attack masks with shift/mask chains and fill ray tables.
 * Calibration targets: IPC ~2.39 (ALU-dense, highly predictable
 * control), store density ~10.8%, HOT written on ~6.5% of stores with
 * well over half of them silent (the same row mask repeats across a
 * rank), which makes hardware watchpoint registers look bad (Fig. 3).
 * Provides the Figure 6 multi-watchpoint set; the fifth watchpoint
 * shares a page with the heavily-written rook table so the VM fallback
 * collapses beyond four watchpoints.
 */

#include "asm/assembler.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "workloads/workload.hh"

namespace dise {

Workload
buildCrafty(const WorkloadParams &params)
{
    using namespace reg;
    Assembler a;
    Workload w;
    w.name = "crafty";
    w.function = "InitializeAttackBoards";

    const uint64_t rounds = 48ull * params.scale;
    constexpr unsigned FrameBytes = 64;
    constexpr unsigned Warm2Off = 24;
    constexpr unsigned ColdOff = 40;

    // ---- data ---------------------------------------------------------
    a.data(layout::DataBase);
    a.align(4096);
    a.label("attack_r"); // rook attacks, written every square
    a.space(64 * 8);
    // Fifth Figure 6 watchpoint lives on the rook-table page: watching
    // it with VM protection traps on every attack_r store.
    a.label("wp_m0");
    a.quad(0);
    a.align(4096);
    a.label("attack_b"); // bishop attacks
    a.space(64 * 8);
    a.align(4096);
    a.label("ray"); // 8 rays x 64 squares
    a.space(64 * 8 * 8);
    a.align(4096);
    a.label("wp_hot");
    a.quad(0);
    a.align(8);
    a.label("wp_ptr");
    a.quadLabel("wp_hot");
    a.align(4096);
    a.label("wp_warm1");
    a.quad(0);
    a.align(4096);
    a.label("wp_cold_heap"); // unused heap twin of COLD
    a.quad(0);
    a.align(4096);
    a.label("wp_range"); // 64-byte per-round summary struct
    a.space(64);
    // Remaining Figure 6 scalars: quad-spaced, quiet pages.
    a.align(4096);
    for (int i = 1; i < 12; ++i) {
        a.label("wp_m" + std::to_string(i));
        a.quad(0);
        a.space(56);
    }

    // ---- text ---------------------------------------------------------
    a.text(layout::TextBase);
    a.label("main");
    a.stmt(1);
    a.lda(sp, -static_cast<int64_t>(FrameBytes), sp);
    a.la(s0, "attack_r");
    a.la(s1, "attack_b");
    a.la(s2, "ray");
    a.la(s3, "wp_hot");
    a.lda(s4, 0, zero); // round counter
    a.li(s5, rounds);
    a.li(gp, 0x9e3779b9); // magic multiplier (hoisted)

    a.label("roundloop");
    a.stmt(10);
    a.lda(t0, 0, zero); // sq = 0
    a.label("sqloop");
    a.stmt(11);
    // row = sq >> 3, col = sq & 7, bit = 1 << sq
    a.srl(t0, 3, t1);
    a.and_(t0, 7, t2);
    a.lda(t3, 1, zero);
    a.sll(t3, t0, t3); // bit
    a.stmt(12);
    // Rook mask: full row | full column, minus own square.
    a.lda(t4, 255, zero);
    a.sll(t1, 3, t5);
    a.sll(t4, t5, t4); // row mask
    a.li(t5, 0x01010101);
    a.sll(t5, 32, t6);
    a.bis(t5, t6, t5);
    a.sll(t5, t2, t5); // column mask
    a.bis(t4, t5, t6);
    a.bic(t6, t3, t6); // rook attacks
    a.sll(t0, 3, t7);
    a.addq(s0, t7, t7);
    a.stq(t6, 0, t7); // attack_r[sq]
    a.stmt(13);
    // Bishop mask: two diagonal shifts of the bit.
    a.sll(t3, 9, t8);
    a.srl(t3, 9, t9);
    a.bis(t8, t9, t8);
    a.sll(t3, 7, t9);
    a.bis(t8, t9, t8);
    a.srl(t3, 7, t9);
    a.bis(t8, t9, t8);
    a.sll(t0, 3, t9);
    a.addq(s1, t9, t9);
    a.stq(t8, 0, t9); // attack_b[sq]
    a.stmt(14);
    // Two ray table entries per square (north and east rays).
    a.bic(t4, t3, t10);
    a.sll(t0, 6, t9);
    a.addq(s2, t9, t9);
    a.stq(t10, 0, t9); // ray[sq][0]
    a.bic(t5, t3, t10);
    a.stq(t10, 8, t9); // ray[sq][1]
    a.stmt(15);
    // Magic-multiply board checksum: both multiplies sit on the
    // loop-carried critical path (like magic-bitboard hashing).
    a.xor_(at, t6, at);
    a.mulq(at, gp, at);
    a.xor_(at, t8, at);
    a.mulq(at, gp, at);
    a.stmt(16);
    // HOT: the rank summary, written every fourth square but changing
    // only at rank boundaries — half of the stores are silent.
    a.and_(t0, 3, t9);
    a.bne(t9, "skip_hot");
    a.and_(t4, 255, t11);
    a.bis(t1, t11, t11);
    a.stq(t11, 0, s3);
    a.label("skip_hot");
    a.stmt(17);
    // WARM1 every eighth square.
    a.and_(t0, 7, t9);
    a.bne(t9, "skip_warm1");
    a.la(t9, "wp_warm1");
    a.ldq(t10, 0, t9);
    a.addq(t10, 1, t10);
    a.stq(t10, 0, t9);
    a.label("skip_warm1");
    a.stmt(18);
    a.addq(t0, 1, t0);
    a.li(t9, 64);
    a.cmplt(t0, t9, t9);
    a.bne(t9, "sqloop");

    a.stmt(20);
    // RANGE summary struct every fourth round.
    a.and_(s4, 3, t9);
    a.bne(t9, "skip_range");
    a.and_(s4, 7, t9);
    a.sll(t9, 3, t9);
    a.la(t10, "wp_range");
    a.addq(t10, t9, t10);
    a.stq(s4, 0, t10);
    a.label("skip_range");
    a.stmt(21);
    // WARM2 (frame local) every 64th round.
    a.li(t9, 63);
    a.and_(s4, t9, t9);
    a.bne(t9, "skip_warm2");
    a.ldq(t10, Warm2Off, sp);
    a.addq(t10, 1, t10);
    a.stq(t10, Warm2Off, sp);
    a.label("skip_warm2");
    a.stmt(22);
    a.addq(s4, 1, s4);
    a.cmplt(s4, s5, t9);
    a.bne(t9, "roundloop");

    // COLD (frame local): written exactly once at the end.
    a.stmt(30);
    a.stq(s4, ColdOff, sp);
    a.mov(s4, a0);
    a.syscall(SysMark);
    a.lda(sp, FrameBytes, sp);
    a.syscall(SysExit);

    w.program = a.finish("main");
    w.hotAddr = w.program.symbol("wp_hot");
    w.warm1Addr = w.program.symbol("wp_warm1");
    w.warm2Addr = layout::StackTop - FrameBytes + Warm2Off;
    w.coldAddr = layout::StackTop - FrameBytes + ColdOff;
    w.ptrAddr = w.program.symbol("wp_ptr");
    w.rangeBase = w.program.symbol("wp_range");
    w.rangeLen = 64;
    for (int i = 0; i < 12; ++i)
        w.multiAddrs.push_back(
            w.program.symbol("wp_m" + std::to_string(i)));
    return w;
}

} // namespace dise
