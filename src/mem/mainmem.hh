/**
 * @file
 * Sparse, page-backed functional main memory.
 *
 * Holds the architectural memory image. Also tracks per-page write
 * protection, which the virtual-memory watchpoint backend uses the way
 * a real debugger uses mprotect(): a store to a protected page raises
 * a debugger trap instead of completing silently.
 */

#ifndef DISE_MEM_MAINMEM_HH
#define DISE_MEM_MAINMEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "isa/inst.hh"

namespace dise {

/** Page size used by both the functional memory and the VM debugger. */
constexpr uint64_t PageBytes = 4096;

/** Sparse functional memory. */
class MainMemory
{
  public:
    /** Read @p bytes (1/2/4/8) at @p addr, little-endian, zero-extended. */
    uint64_t read(Addr addr, unsigned bytes) const;

    /** Write the low @p bytes of @p value at @p addr. */
    void write(Addr addr, unsigned bytes, uint64_t value);

    /** Sign-extending load helper. */
    int64_t readSigned(Addr addr, unsigned bytes) const;

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** Bulk copy-out (range-watchpoint shadow comparison). */
    void readBlock(Addr addr, uint8_t *dst, size_t len) const;

    /** @name mprotect()-style page protection */
    ///@{
    void protectPage(Addr addr);
    void unprotectPage(Addr addr);
    void clearProtections();
    bool isWriteProtected(Addr addr) const;
    size_t protectedPageCount() const { return protectedPages_.size(); }
    ///@}

    /** Number of distinct pages touched (for tests). */
    size_t pageCount() const { return pages_.size(); }

  private:
    struct Page
    {
        uint8_t bytes[PageBytes] = {};
    };

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    std::unordered_set<uint64_t> protectedPages_;
};

} // namespace dise

#endif // DISE_MEM_MAINMEM_HH
