/**
 * @file
 * Sparse, page-backed functional main memory.
 *
 * Holds the architectural memory image. Also tracks per-page write
 * protection, which the virtual-memory watchpoint backend uses the way
 * a real debugger uses mprotect(): a store to a protected page raises
 * a debugger trap instead of completing silently.
 *
 * The fetch side gets two accelerations: fetchWord() keeps a one-entry
 * page-pointer cache (instruction fetch exhibits near-perfect page
 * locality), and pages holding externally cached decodes can be marked
 * so that any write to them notifies registered CodeWatchers — the
 * invalidation discipline a predecoded-instruction cache needs to stay
 * correct under self-modifying or debugger-rewritten code.
 */

#ifndef DISE_MEM_MAINMEM_HH
#define DISE_MEM_MAINMEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/inst.hh"

namespace dise {

/** Page size used by both the functional memory and the VM debugger. */
constexpr uint64_t PageBytes = 4096;

/**
 * Observer of writes to pages marked via MainMemory::markCodePage.
 * Implemented by components that cache decoded instructions.
 */
class CodeWatcher
{
  public:
    virtual ~CodeWatcher() = default;
    /** A byte in marked page @p frame was written. */
    virtual void onCodeWrite(uint64_t frame) = 0;
};

/** Sparse functional memory. */
class MainMemory
{
  public:
    /** Read @p bytes (1/2/4/8) at @p addr, little-endian, zero-extended. */
    uint64_t read(Addr addr, unsigned bytes) const;

    /** Write the low @p bytes of @p value at @p addr. */
    void write(Addr addr, unsigned bytes, uint64_t value);

    /** Sign-extending load helper. */
    int64_t readSigned(Addr addr, unsigned bytes) const;

    /**
     * Instruction-fetch fast path: a 32-bit little-endian read through
     * a one-entry page-pointer cache. Equivalent to read(addr, 4).
     */
    uint32_t fetchWord(Addr addr) const;

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** Bulk copy-out (range-watchpoint shadow comparison). */
    void readBlock(Addr addr, uint8_t *dst, size_t len) const;

    /**
     * Toggle the fetch/data page-pointer caches (on by default).
     * Purely a performance switch — used by bench/throughput.cc to
     * reproduce the pre-cache hot path for A/B measurement.
     */
    void setPageCacheEnabled(bool on);

    /** @name Code-write invalidation (predecoded-µop-cache support) */
    ///@{
    void addCodeWatcher(CodeWatcher *w);
    void removeCodeWatcher(CodeWatcher *w);
    /**
     * Mark the page containing @p addr as holding cached decodes. The
     * next write to it notifies every watcher (and unmarks the page;
     * watchers re-mark when they re-cache it).
     */
    void markCodePage(Addr addr);
    ///@}

    /** @name mprotect()-style page protection */
    ///@{
    void protectPage(Addr addr);
    void unprotectPage(Addr addr);
    void clearProtections();
    bool isWriteProtected(Addr addr) const;
    size_t protectedPageCount() const { return protectedPages_.size(); }
    ///@}

    /** Number of distinct pages touched (for tests). */
    size_t pageCount() const { return pages_.size(); }

  private:
    struct Page
    {
        uint8_t bytes[PageBytes] = {};
        /** Writes to this page notify the registered CodeWatchers. */
        bool codeCached = false;
    };

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;
    void notifyCodeWrite(Page &page, uint64_t frame);

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    std::unordered_set<uint64_t> protectedPages_;
    std::vector<CodeWatcher *> codeWatchers_;
    bool pageCacheEnabled_ = true;

    // One-entry fetch page cache (fetchWord).
    mutable uint64_t fetchFrame_ = ~uint64_t{0};
    mutable const Page *fetchPage_ = nullptr;

    // Direct-mapped page-pointer cache for the data side. Pages are
    // never destroyed once allocated, so cached pointers stay valid;
    // absent pages are simply not cached.
    struct TransEnt
    {
        uint64_t frame = ~uint64_t{0};
        Page *page = nullptr;
    };
    static constexpr unsigned NumTransEnts = 16; ///< power of two
    mutable std::array<TransEnt, NumTransEnts> transCache_{};
};

} // namespace dise

#endif // DISE_MEM_MAINMEM_HH
