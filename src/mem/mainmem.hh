/**
 * @file
 * Sparse, page-backed functional main memory.
 *
 * Holds the architectural memory image. Also tracks per-page write
 * protection, which the virtual-memory watchpoint backend uses the way
 * a real debugger uses mprotect(): a store to a protected page raises
 * a debugger trap instead of completing silently.
 *
 * The fetch side gets two accelerations: fetchWord() keeps a one-entry
 * page-pointer cache (instruction fetch exhibits near-perfect page
 * locality), and pages holding externally cached decodes can be marked
 * so that any write to them notifies registered CodeWatchers — the
 * invalidation discipline a predecoded-instruction cache needs to stay
 * correct under self-modifying or debugger-rewritten code.
 *
 * The checkpoint subsystem reuses the same write-hook structure as a
 * copy-on-write undo log: while the log is active, the first store to
 * any page since the last checkpoint captures that page's pre-image, so
 * snapshot cost is proportional to the pages dirtied between
 * checkpoints, never to total memory size (see src/replay/).
 */

#ifndef DISE_MEM_MAINMEM_HH
#define DISE_MEM_MAINMEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitutils.hh"
#include "isa/inst.hh"

namespace dise {

/** Page size used by both the functional memory and the VM debugger. */
constexpr uint64_t PageBytes = 4096;

/**
 * Observer of writes to pages marked via MainMemory::markCodePage.
 * Implemented by components that cache decoded instructions.
 */
class CodeWatcher
{
  public:
    virtual ~CodeWatcher() = default;
    /** A byte in marked page @p frame was written. */
    virtual void onCodeWrite(uint64_t frame) = 0;
};

/**
 * Pre-image of one page captured by the copy-on-write undo log: the
 * page's full contents as they were when the current undo interval
 * began. Applying an interval's pre-images rolls memory back to the
 * state at the start of that interval.
 */
struct UndoPage
{
    uint64_t frame = 0;
    std::array<uint8_t, PageBytes> bytes{};
};

/** All pre-images captured during one undo interval. */
using UndoLog = std::vector<UndoPage>;

/** Sparse functional memory. */
class MainMemory
{
  public:
    /** Read @p bytes (1/2/4/8) at @p addr, little-endian, zero-extended. */
    uint64_t read(Addr addr, unsigned bytes) const;

    /** Write the low @p bytes of @p value at @p addr. */
    void write(Addr addr, unsigned bytes, uint64_t value);

    /** Sign-extending load helper. */
    int64_t readSigned(Addr addr, unsigned bytes) const;

    /**
     * Instruction-fetch fast path: a 32-bit little-endian read through
     * a one-entry page-pointer cache. Equivalent to read(addr, 4).
     */
    uint32_t fetchWord(Addr addr) const;

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr addr, const uint8_t *src, size_t len);

    /** Bulk copy-out (range-watchpoint shadow comparison). */
    void readBlock(Addr addr, uint8_t *dst, size_t len) const;

    /**
     * Toggle the fetch/data page-pointer caches (on by default).
     * Purely a performance switch — used by bench/throughput.cc to
     * reproduce the pre-cache hot path for A/B measurement.
     */
    void setPageCacheEnabled(bool on);

    /** @name Code-write invalidation (predecoded-µop-cache support) */
    ///@{
    void addCodeWatcher(CodeWatcher *w);
    void removeCodeWatcher(CodeWatcher *w);
    /**
     * Mark the page containing @p addr as holding cached decodes. The
     * next write to it notifies every watcher (and unmarks the page;
     * watchers re-mark when they re-cache it).
     */
    void markCodePage(Addr addr);
    ///@}

    /** @name Copy-on-write undo log (checkpoint support) */
    ///@{
    /** Start capturing pre-images; begins the first undo interval. */
    void beginUndoLog();
    /** Stop capturing and drop any pending pre-images. */
    void endUndoLog();
    bool undoLogActive() const { return undoActive_; }
    /**
     * Seal the current interval: return the pre-images of every page
     * dirtied since the interval began and start a new, empty interval.
     */
    UndoLog sealUndoInterval();
    /** Pages dirtied so far in the open interval. */
    size_t undoPagesPending() const { return undoLog_.size(); }
    /**
     * Read-only view of the open interval's pre-images (no seal, no
     * state change). Interval-parallel replay materializes historical
     * memory images on a *clone* by applying this plus the sealed
     * interval chain, leaving the live memory untouched.
     */
    const UndoLog &pendingUndo() const { return undoLog_; }
    /**
     * Replace this memory's image with a copy of @p src's pages (raw
     * contents only — no protections, code-page marks, watchers, or
     * undo state travel with it). The basis of a share-nothing replay
     * replica. Reads @p src without touching its mutable caches, so
     * concurrent cloners are safe.
     */
    void copyImageFrom(const MainMemory &src);
    /**
     * Write an interval's pre-images back, newest interval first when
     * chaining across checkpoints. Restored pages are treated as clean
     * for the open interval, code-watcher invalidation fires for pages
     * holding cached decodes, and the page-pointer caches are dropped.
     */
    void applyUndo(const UndoLog &log);
    ///@}

    /**
     * Drop the fetch/data page-pointer caches. Called by applyUndo;
     * also part of the checkpoint-restore contract so callers can
     * guarantee no stale translation survives a restore.
     */
    void invalidatePagePointerCaches();

    /**
     * Order-independent hash of all nonzero page contents (pages that
     * are entirely zero hash identically to absent ones, so a restored
     * image digests equal to a never-touched one).
     */
    uint64_t contentHash(uint64_t seed = FnvOffsetBasis) const;

    /** @name mprotect()-style page protection */
    ///@{
    void protectPage(Addr addr);
    void unprotectPage(Addr addr);
    void clearProtections();
    bool isWriteProtected(Addr addr) const;
    size_t protectedPageCount() const { return protectedPages_.size(); }
    ///@}

    /** Number of distinct pages touched (for tests). */
    size_t pageCount() const { return pages_.size(); }

  private:
    struct Page
    {
        uint8_t bytes[PageBytes] = {};
        /** Writes to this page notify the registered CodeWatchers. */
        bool codeCached = false;
        /** Undo interval this page's pre-image was last captured in. */
        uint64_t undoEpoch = 0;
    };

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;
    void notifyCodeWrite(Page &page, uint64_t frame);
    void captureUndo(Page &page, uint64_t frame);

    /** First write to @p page this interval: capture its pre-image. */
    void
    undoHook(Page &page, uint64_t frame)
    {
        if (undoActive_ && page.undoEpoch != undoEpoch_)
            captureUndo(page, frame);
    }

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    std::unordered_set<uint64_t> protectedPages_;
    std::vector<CodeWatcher *> codeWatchers_;
    bool pageCacheEnabled_ = true;

    // Copy-on-write undo log. The epoch is monotonic across intervals;
    // a page's pre-image is captured when its undoEpoch lags the
    // current interval's.
    bool undoActive_ = false;
    uint64_t undoEpoch_ = 0;
    UndoLog undoLog_;

    // One-entry fetch page cache (fetchWord).
    mutable uint64_t fetchFrame_ = ~uint64_t{0};
    mutable const Page *fetchPage_ = nullptr;

    // Direct-mapped page-pointer cache for the data side. Pages are
    // never destroyed once allocated, so cached pointers stay valid;
    // absent pages are simply not cached.
    struct TransEnt
    {
        uint64_t frame = ~uint64_t{0};
        Page *page = nullptr;
    };
    static constexpr unsigned NumTransEnts = 16; ///< power of two
    mutable std::array<TransEnt, NumTransEnts> transCache_{};
};

} // namespace dise

#endif // DISE_MEM_MAINMEM_HH
