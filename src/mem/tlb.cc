#include "mem/tlb.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg), stats_(cfg.name), accessesStat_(stats_.counter("accesses")),
      missesStat_(stats_.counter("misses"))
{
    DISE_ASSERT(cfg_.entries % cfg_.assoc == 0, "TLB geometry mismatch");
    numSets_ = cfg_.entries / cfg_.assoc;
    DISE_ASSERT(isPow2(numSets_), "TLB set count must be a power of two");
    entries_.resize(cfg_.entries);
}

unsigned
Tlb::access(Addr addr)
{
    ++useClock_;
    uint64_t vpn = addr / cfg_.pageBytes;
    uint64_t set = vpn & (numSets_ - 1);
    Entry *base = &entries_[set * cfg_.assoc];

    ++*accessesStat_;
    Entry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            e.lastUse = useClock_;
            return 0;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }
    ++*missesStat_;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock_;
    return cfg_.missPenalty;
}

bool
Tlb::probe(Addr addr) const
{
    uint64_t vpn = addr / cfg_.pageBytes;
    uint64_t set = vpn & (numSets_ - 1);
    const Entry *base = &entries_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    return false;
}

void
Tlb::flushAll()
{
    for (auto &e : entries_)
        e = Entry{};
}

} // namespace dise
