#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), stats_(cfg.name), readsStat_(stats_.counter("reads")),
      writesStat_(stats_.counter("writes")),
      missesStat_(stats_.counter("misses")),
      writebacksStat_(stats_.counter("writebacks"))
{
    DISE_ASSERT(isPow2(cfg_.lineBytes), "line size must be a power of two");
    DISE_ASSERT(cfg_.assoc > 0, "associativity must be nonzero");
    uint64_t numLines = cfg_.sizeBytes / cfg_.lineBytes;
    DISE_ASSERT(numLines % cfg_.assoc == 0, "geometry mismatch");
    numSets_ = numLines / cfg_.assoc;
    DISE_ASSERT(isPow2(numSets_), "set count must be a power of two");
    lines_.resize(numLines);
}

uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / cfg_.lineBytes) & (numSets_ - 1);
}

uint64_t
Cache::tagOf(Addr addr) const
{
    return addr / cfg_.lineBytes / numSets_;
}

CacheResult
Cache::access(Addr addr, bool isWrite)
{
    ++useClock_;
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];

    ++*(isWrite ? writesStat_ : readsStat_);

    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || isWrite;
            return {true, false};
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse)) {
            victim = &line;
        }
    }

    ++*missesStat_;
    bool writeback = victim->valid && victim->dirty;
    if (writeback)
        ++*writebacksStat_;
    victim->valid = true;
    victim->dirty = isWrite;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return {false, writeback};
}

bool
Cache::probe(Addr addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace dise
