/**
 * @file
 * Tag-only set-associative timing cache with true-LRU replacement and a
 * write-back/write-allocate policy. Data values live in the functional
 * MainMemory; these caches model latency and occupancy only, which is
 * all the paper's evaluation needs (instruction-cache pressure from
 * rewriting, load-port contention from replacement sequences, memory
 * boundedness of mcf).
 */

#ifndef DISE_MEM_CACHE_HH
#define DISE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "isa/inst.hh"

namespace dise {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned hitLatency = 1; ///< cycles added on hit
};

/** Result of a cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
};

/** One level of tag-only cache state. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    // Holds interior pointers into its own StatGroup.
    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /**
     * Access @p addr. Allocates on miss. @p isWrite marks the line dirty.
     * Caller composes latency from hit/miss outcome and the next level.
     */
    CacheResult access(Addr addr, bool isWrite);

    /** Probe without modifying state (for tests). */
    bool probe(Addr addr) const;

    /** Invalidate all lines (e.g. when a program image is rewritten). */
    void flushAll();

    const CacheConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    uint64_t setIndex(Addr addr) const;
    uint64_t tagOf(Addr addr) const;

    CacheConfig cfg_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ x assoc
    uint64_t useClock_ = 0;
    StatGroup stats_;
    // Cached counter handles (access() runs once per simulated access).
    uint64_t *readsStat_;
    uint64_t *writesStat_;
    uint64_t *missesStat_;
    uint64_t *writebacksStat_;
};

} // namespace dise

#endif // DISE_MEM_CACHE_HH
