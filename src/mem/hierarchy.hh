/**
 * @file
 * The full on-chip memory system of the simulated processor: split L1
 * instruction/data caches, unified L2, I/D TLBs, and a bandwidth-limited
 * memory bus (32 bytes wide at 1/4 core frequency, per the paper's
 * configuration). The pipeline asks it for access latencies; port
 * arbitration happens in the pipeline's issue stage.
 */

#ifndef DISE_MEM_HIERARCHY_HH
#define DISE_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace dise {

/** Configuration matching Section 5 of the paper. */
struct MemSystemConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 2, 64, 0};
    CacheConfig l1d{"l1d", 32 * 1024, 2, 64, 2};
    CacheConfig l2{"l2", 1024 * 1024, 4, 64, 12};
    TlbConfig itlb{"itlb", 64, 4, 4096, 30};
    TlbConfig dtlb{"dtlb", 64, 4, 4096, 30};
    unsigned memLatency = 100;      ///< DRAM access cycles
    unsigned busCyclesPerLine = 8;  ///< 64B line over a 32B bus at 1/4 freq
};

/** Timing-side memory system. */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &cfg = {});

    /**
     * Latency in cycles of an instruction fetch touching @p addr
     * beginning at cycle @p now (0 = same-cycle hit).
     */
    uint64_t fetchAccess(Addr addr, uint64_t now);

    /** Latency in cycles of a data access beginning at @p now. */
    uint64_t dataAccess(Addr addr, bool isWrite, uint64_t now);

    /** Invalidate instruction-side state (after code rewriting). */
    void flushInstructionState();

    const MemSystemConfig &config() const { return cfg_; }
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }

  private:
    /** Claim the memory bus at @p earliest; returns transfer-done delay. */
    uint64_t busOccupy(uint64_t earliest);

    MemSystemConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
    uint64_t busBusyUntil_ = 0;
};

} // namespace dise

#endif // DISE_MEM_HIERARCHY_HH
