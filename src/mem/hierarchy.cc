#include "mem/hierarchy.hh"

#include <algorithm>

namespace dise {

MemSystem::MemSystem(const MemSystemConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2),
      itlb_(cfg.itlb), dtlb_(cfg.dtlb)
{
}

uint64_t
MemSystem::busOccupy(uint64_t earliest)
{
    uint64_t start = std::max(earliest, busBusyUntil_);
    busBusyUntil_ = start + cfg_.busCyclesPerLine;
    return busBusyUntil_ - earliest;
}

uint64_t
MemSystem::fetchAccess(Addr addr, uint64_t now)
{
    uint64_t lat = itlb_.access(addr);
    CacheResult r1 = l1i_.access(addr, false);
    lat += cfg_.l1i.hitLatency;
    if (r1.hit)
        return lat;
    CacheResult r2 = l2_.access(addr, false);
    lat += cfg_.l2.hitLatency;
    if (r2.hit)
        return lat;
    if (r2.writeback)
        busOccupy(now + lat); // dirty victim drains first
    lat += cfg_.memLatency;
    lat += busOccupy(now + lat);
    return lat;
}

uint64_t
MemSystem::dataAccess(Addr addr, bool isWrite, uint64_t now)
{
    uint64_t lat = dtlb_.access(addr);
    CacheResult r1 = l1d_.access(addr, isWrite);
    lat += cfg_.l1d.hitLatency;
    if (r1.hit)
        return lat;
    CacheResult r2 = l2_.access(addr, isWrite);
    lat += cfg_.l2.hitLatency;
    if (r2.hit)
        return lat;
    if (r2.writeback)
        busOccupy(now + lat);
    lat += cfg_.memLatency;
    lat += busOccupy(now + lat);
    return lat;
}

void
MemSystem::flushInstructionState()
{
    l1i_.flushAll();
    itlb_.flushAll();
}

} // namespace dise
