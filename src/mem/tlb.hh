/**
 * @file
 * Tag-only set-associative TLB (timing model). The simulator maps
 * virtual addresses identity-style, so the TLB contributes only the
 * miss penalty of a page-table walk.
 */

#ifndef DISE_MEM_TLB_HH
#define DISE_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "isa/inst.hh"

namespace dise {

struct TlbConfig
{
    std::string name = "tlb";
    unsigned entries = 64;
    unsigned assoc = 4;
    uint64_t pageBytes = 4096;
    unsigned missPenalty = 30; ///< page-walk cycles
};

/** Timing TLB: access() returns the added latency (0 on hit). */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    // Holds interior pointers into its own StatGroup.
    Tlb(const Tlb &) = delete;
    Tlb &operator=(const Tlb &) = delete;

    /** Touch the page containing @p addr; returns extra cycles. */
    unsigned access(Addr addr);

    bool probe(Addr addr) const;
    void flushAll();

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t vpn = 0;
        uint64_t lastUse = 0;
    };

    TlbConfig cfg_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    uint64_t useClock_ = 0;
    StatGroup stats_;
    // Cached counter handles (access() runs once per simulated access).
    uint64_t *accessesStat_;
    uint64_t *missesStat_;
};

} // namespace dise

#endif // DISE_MEM_TLB_HH
