#include "mem/mainmem.hh"

#include <algorithm>
#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    uint64_t frame = addr / PageBytes;
    TransEnt &ent = transCache_[frame & (NumTransEnts - 1)];
    if (ent.frame == frame)
        return *ent.page;
    auto &slot = pages_[frame];
    if (!slot) {
        slot = std::make_unique<Page>();
        // A fetchWord miss may have cached "no page" for this frame.
        if (frame == fetchFrame_)
            fetchPage_ = slot.get();
    }
    if (pageCacheEnabled_) {
        ent.frame = frame;
        ent.page = slot.get();
    }
    return *slot;
}

const MainMemory::Page *
MainMemory::pageForConst(Addr addr) const
{
    uint64_t frame = addr / PageBytes;
    TransEnt &ent = transCache_[frame & (NumTransEnts - 1)];
    if (ent.frame == frame)
        return ent.page;
    auto it = pages_.find(frame);
    if (it == pages_.end())
        return nullptr; // absent pages are not cached
    if (pageCacheEnabled_) {
        ent.frame = frame;
        ent.page = it->second.get();
    }
    return it->second.get();
}

void
MainMemory::setPageCacheEnabled(bool on)
{
    pageCacheEnabled_ = on;
    if (!on) {
        transCache_.fill(TransEnt{});
        fetchFrame_ = ~uint64_t{0};
        fetchPage_ = nullptr;
    }
}

void
MainMemory::addCodeWatcher(CodeWatcher *w)
{
    codeWatchers_.push_back(w);
}

void
MainMemory::removeCodeWatcher(CodeWatcher *w)
{
    codeWatchers_.erase(
        std::remove(codeWatchers_.begin(), codeWatchers_.end(), w),
        codeWatchers_.end());
}

void
MainMemory::markCodePage(Addr addr)
{
    pageFor(addr).codeCached = true;
}

void
MainMemory::beginUndoLog()
{
    undoActive_ = true;
    ++undoEpoch_;
    undoLog_.clear();
}

void
MainMemory::endUndoLog()
{
    undoActive_ = false;
    undoLog_.clear();
}

UndoLog
MainMemory::sealUndoInterval()
{
    DISE_ASSERT(undoActive_, "sealUndoInterval without beginUndoLog");
    UndoLog out = std::move(undoLog_);
    undoLog_.clear();
    ++undoEpoch_;
    return out;
}

void
MainMemory::captureUndo(Page &page, uint64_t frame)
{
    page.undoEpoch = undoEpoch_;
    undoLog_.emplace_back();
    UndoPage &u = undoLog_.back();
    u.frame = frame;
    std::memcpy(u.bytes.data(), page.bytes, PageBytes);
}

void
MainMemory::applyUndo(const UndoLog &log)
{
    for (const UndoPage &u : log) {
        Page &p = pageFor(u.frame * PageBytes);
        std::memcpy(p.bytes, u.bytes.data(), PageBytes);
        // Restoring bytes is a modification like any other: cached
        // decodes for the page are now stale.
        if (p.codeCached)
            notifyCodeWrite(p, u.frame);
        // The restored image is the open interval's new baseline.
        p.undoEpoch = 0;
    }
    invalidatePagePointerCaches();
}

void
MainMemory::copyImageFrom(const MainMemory &src)
{
    pages_.clear();
    for (const auto &[frame, page] : src.pages_) {
        auto copy = std::make_unique<Page>();
        std::memcpy(copy->bytes, page->bytes, PageBytes);
        pages_.emplace(frame, std::move(copy));
    }
    invalidatePagePointerCaches();
}

void
MainMemory::invalidatePagePointerCaches()
{
    transCache_.fill(TransEnt{});
    fetchFrame_ = ~uint64_t{0};
    fetchPage_ = nullptr;
}

uint64_t
MainMemory::contentHash(uint64_t seed) const
{
    // Order-independent: combine per-page hashes with addition so the
    // unordered map's iteration order cannot leak into the digest.
    uint64_t acc = seed;
    for (const auto &[frame, page] : pages_) {
        bool zero = true;
        for (uint64_t i = 0; i < PageBytes && zero; ++i)
            zero = page->bytes[i] == 0;
        if (zero)
            continue;
        uint64_t h = FnvOffsetBasis ^ frame;
        for (uint64_t i = 0; i < PageBytes; ++i)
            h = fnvMix(h, page->bytes[i]);
        acc += h;
    }
    return acc;
}

void
MainMemory::notifyCodeWrite(Page &page, uint64_t frame)
{
    // Unmark first: watchers drop their cached decodes and re-mark the
    // page when they next cache it, so store bursts to a page that is
    // no longer executed pay for a single notification.
    page.codeCached = false;
    for (CodeWatcher *w : codeWatchers_)
        w->onCodeWrite(frame);
}

uint64_t
MainMemory::read(Addr addr, unsigned bytes) const
{
    DISE_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
                "bad access size ", bytes);
    uint64_t v = 0;
    // Fast path: access within one page.
    uint64_t off = addr % PageBytes;
    if (off + bytes <= PageBytes) {
        const Page *p = pageForConst(addr);
        if (!p)
            return 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= static_cast<uint64_t>(p->bytes[off + i]) << (8 * i);
        return v;
    }
    for (unsigned i = 0; i < bytes; ++i) {
        const Page *p = pageForConst(addr + i);
        uint8_t b = p ? p->bytes[(addr + i) % PageBytes] : 0;
        v |= static_cast<uint64_t>(b) << (8 * i);
    }
    return v;
}

uint32_t
MainMemory::fetchWord(Addr addr) const
{
    uint64_t off = addr % PageBytes;
    if (off + 4 > PageBytes || !pageCacheEnabled_) // straddle / A-B mode
        return static_cast<uint32_t>(read(addr, 4));
    uint64_t frame = addr / PageBytes;
    if (frame != fetchFrame_) {
        fetchFrame_ = frame;
        fetchPage_ = pageForConst(addr);
    }
    if (!fetchPage_)
        return 0;
    const uint8_t *b = &fetchPage_->bytes[off];
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
}

int64_t
MainMemory::readSigned(Addr addr, unsigned bytes) const
{
    return sext(read(addr, bytes), bytes * 8);
}

void
MainMemory::write(Addr addr, unsigned bytes, uint64_t value)
{
    DISE_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
                "bad access size ", bytes);
    uint64_t off = addr % PageBytes;
    if (off + bytes <= PageBytes) {
        Page &p = pageFor(addr);
        undoHook(p, addr / PageBytes);
        for (unsigned i = 0; i < bytes; ++i)
            p.bytes[off + i] = (value >> (8 * i)) & 0xff;
        if (p.codeCached)
            notifyCodeWrite(p, addr / PageBytes);
        return;
    }
    for (unsigned i = 0; i < bytes; ++i) {
        Page &p = pageFor(addr + i);
        undoHook(p, (addr + i) / PageBytes);
        p.bytes[(addr + i) % PageBytes] = (value >> (8 * i)) & 0xff;
        if (p.codeCached)
            notifyCodeWrite(p, (addr + i) / PageBytes);
    }
}

void
MainMemory::writeBlock(Addr addr, const uint8_t *src, size_t len)
{
    while (len) {
        Page &p = pageFor(addr);
        undoHook(p, addr / PageBytes);
        uint64_t off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        std::memcpy(&p.bytes[off], src, chunk);
        if (p.codeCached)
            notifyCodeWrite(p, addr / PageBytes);
        addr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
MainMemory::readBlock(Addr addr, uint8_t *dst, size_t len) const
{
    while (len) {
        const Page *p = pageForConst(addr);
        uint64_t off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        if (p)
            std::memcpy(dst, &p->bytes[off], chunk);
        else
            std::memset(dst, 0, chunk);
        addr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

void
MainMemory::protectPage(Addr addr)
{
    protectedPages_.insert(addr / PageBytes);
}

void
MainMemory::unprotectPage(Addr addr)
{
    protectedPages_.erase(addr / PageBytes);
}

void
MainMemory::clearProtections()
{
    protectedPages_.clear();
}

bool
MainMemory::isWriteProtected(Addr addr) const
{
    return !protectedPages_.empty() &&
           protectedPages_.count(addr / PageBytes);
}

} // namespace dise
