#include "mem/mainmem.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dise {

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    uint64_t frame = addr / PageBytes;
    auto &slot = pages_[frame];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

const MainMemory::Page *
MainMemory::pageForConst(Addr addr) const
{
    auto it = pages_.find(addr / PageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t
MainMemory::read(Addr addr, unsigned bytes) const
{
    DISE_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
                "bad access size ", bytes);
    uint64_t v = 0;
    // Fast path: access within one page.
    uint64_t off = addr % PageBytes;
    if (off + bytes <= PageBytes) {
        const Page *p = pageForConst(addr);
        if (!p)
            return 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= static_cast<uint64_t>(p->bytes[off + i]) << (8 * i);
        return v;
    }
    for (unsigned i = 0; i < bytes; ++i) {
        const Page *p = pageForConst(addr + i);
        uint8_t b = p ? p->bytes[(addr + i) % PageBytes] : 0;
        v |= static_cast<uint64_t>(b) << (8 * i);
    }
    return v;
}

int64_t
MainMemory::readSigned(Addr addr, unsigned bytes) const
{
    return sext(read(addr, bytes), bytes * 8);
}

void
MainMemory::write(Addr addr, unsigned bytes, uint64_t value)
{
    DISE_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
                "bad access size ", bytes);
    uint64_t off = addr % PageBytes;
    if (off + bytes <= PageBytes) {
        Page &p = pageFor(addr);
        for (unsigned i = 0; i < bytes; ++i)
            p.bytes[off + i] = (value >> (8 * i)) & 0xff;
        return;
    }
    for (unsigned i = 0; i < bytes; ++i)
        pageFor(addr + i).bytes[(addr + i) % PageBytes] =
            (value >> (8 * i)) & 0xff;
}

void
MainMemory::writeBlock(Addr addr, const uint8_t *src, size_t len)
{
    while (len) {
        Page &p = pageFor(addr);
        uint64_t off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        std::memcpy(&p.bytes[off], src, chunk);
        addr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
MainMemory::readBlock(Addr addr, uint8_t *dst, size_t len) const
{
    while (len) {
        const Page *p = pageForConst(addr);
        uint64_t off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        if (p)
            std::memcpy(dst, &p->bytes[off], chunk);
        else
            std::memset(dst, 0, chunk);
        addr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

void
MainMemory::protectPage(Addr addr)
{
    protectedPages_.insert(addr / PageBytes);
}

void
MainMemory::unprotectPage(Addr addr)
{
    protectedPages_.erase(addr / PageBytes);
}

void
MainMemory::clearProtections()
{
    protectedPages_.clear();
}

bool
MainMemory::isWriteProtected(Addr addr) const
{
    return !protectedPages_.empty() &&
           protectedPages_.count(addr / PageBytes);
}

} // namespace dise
