#include "debug/vm_backend.hh"

#include "common/bitutils.hh"

namespace dise {

bool
VmBackend::install(DebugTarget &target,
                   const std::vector<WatchSpec> &watches,
                   const std::vector<BreakSpec> &breaks)
{
    target_ = &target;
    if (!breaks.empty())
        return false; // breakpoints use binary patching, not VM
    for (const auto &w : watches) {
        if (w.kind == WatchKind::Indirect)
            return false; // cannot statically determine pages
        watches_.emplace_back(w);
    }
    for (const auto &w : watches) {
        Addr lo = alignDown(w.addr, PageBytes);
        uint64_t len = w.kind == WatchKind::Range ? w.length : w.size;
        Addr hi = alignDown(w.addr + (len ? len : 1) - 1, PageBytes);
        for (Addr p = lo; p <= hi; p += PageBytes)
            pages_.push_back(p);
    }
    return true;
}

void
VmBackend::prime(DebugTarget &target)
{
    for (auto &w : watches_)
        w.prime(target.mem);
    for (Addr p : pages_)
        target.mem.protectPage(p);
}

StreamEnv
VmBackend::streamEnv(DebugTarget &target)
{
    StreamEnv env = DebugBackend::streamEnv(target);
    env.monitorStores = true;
    return env;
}

DebugAction
VmBackend::onStore(const MicroOp &op)
{
    const MainMemory &mem = target_->mem;
    if (!mem.isWriteProtected(op.effAddr) &&
        !mem.isWriteProtected(op.effAddr + op.memBytes - 1))
        return {};

    // The store faulted: the debugger takes a transition, single-steps
    // the store, and re-evaluates the watched expressions.
    ++seq_;
    bool anyOverlap = false;
    bool anyPredicateFail = false;
    bool anyUser = false;
    for (size_t i = 0; i < watches_.size(); ++i) {
        if (!watches_[i].overlaps(op.effAddr, op.memBytes))
            continue;
        anyOverlap = true;
        auto ch = watches_[i].evaluate(mem);
        if (!ch)
            continue;
        if (watches_[i].predicatePasses(ch->newValue)) {
            recordWatch(static_cast<int>(i), *ch, seq_, op.pc);
            anyUser = true;
        } else {
            anyPredicateFail = true;
        }
    }

    if (anyUser)
        return {TransitionKind::User};
    if (anyPredicateFail)
        return {TransitionKind::SpuriousPredicate};
    if (anyOverlap)
        return {TransitionKind::SpuriousValue};
    return {TransitionKind::SpuriousAddress};
}

} // namespace dise
