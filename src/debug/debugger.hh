/**
 * @file
 * The debugger engine room: one backend (watchpoint technique) bound
 * to one target, plus the time-travel session (src/replay/).
 *
 * This is no longer the public front end. New code should drive a
 * DebugSession (src/session/), which owns a Debugger and exposes every
 * capability — watch/break, forward and reverse execution,
 * register/memory peek-poke, backend selection, statistics — as typed
 * Request/Response messages with a stable wire encoding and an ordered
 * event queue, locally or over the GDB-RSP bridge (src/rsp/). The
 * convenience forwards below (cont()/reverseContinue()/watchEvents()
 * and friends) remain as thin deprecated shims for in-process callers
 * and the existing tests.
 *
 * The same session code runs over the DISE backend or any of the four
 * incumbent implementations the paper compares against — the debugger
 * auto-generates productions/machinery from user requests; users never
 * write productions themselves.
 */

#ifndef DISE_DEBUG_DEBUGGER_HH
#define DISE_DEBUG_DEBUGGER_HH

#include <functional>
#include <memory>

#include "cpu/func_cpu.hh"
#include "cpu/timing_cpu.hh"
#include "debug/backend.hh"
#include "debug/dise_backend.hh"
#include "replay/replay_log.hh"
#include "replay/time_travel.hh"

namespace dise {

/** Which watchpoint implementation to use. */
enum class BackendKind : uint8_t {
    Dise,
    SingleStep,
    VirtualMemory,
    HardwareReg,
    Rewrite,
};

const char *backendName(BackendKind kind);

struct DebuggerOptions
{
    BackendKind backend = BackendKind::Dise;
    DiseOptions dise{};
    unsigned hwRegs = 4;
};

class Debugger
{
  public:
    Debugger(DebugTarget &target, DebuggerOptions opts = {});
    ~Debugger();

    /** Register a watchpoint. Returns its index. */
    int watch(const WatchSpec &spec);

    /** Register a breakpoint. Returns its index. */
    int breakAt(const BreakSpec &spec);
    int
    breakAt(Addr pc)
    {
        BreakSpec bp;
        bp.pc = pc;
        return breakAt(bp);
    }

    /**
     * Install the backend machinery, load the program, and prime
     * shadow state. Returns false when the chosen technique cannot
     * implement the request (the paper's "no experiment" cells).
     * @p postLoad, when given, runs between load() and prime() — the
     * session front end uses it to fold configuration-phase pokes into
     * the initial state before watchpoint shadows snapshot it.
     */
    bool attach(const std::function<void(DebugTarget &)> &postLoad = {});
    bool attached() const { return attached_; }

    /** Cycle-level run under the timing model. */
    RunStats run(TimingConfig cfg = {}, RunLimits limits = {});

    /** Timing-free functional run (tests, calibration). */
    FuncResult runFunctional(uint64_t maxAppInsts = 0);

    /** @name Time-travel session (checkpointed functional execution) */
    ///@{
    /**
     * Start (or return the existing) time-travel session. Created on
     * first use after attach(); the session owns the checkpoint
     * timeline and the replay log for this debugger.
     */
    TimeTravel &timeTravel(TimeTravelConfig cfg = {});
    bool timeTraveling() const { return tt_ != nullptr; }

    /** Convenience forwards into the session.
     *  @deprecated Thin shims; prefer DebugSession's verbs, which also
     *  deliver events on the ordered queue. */
    StopInfo cont() { return timeTravel().cont(); }
    StopInfo reverseContinue() { return timeTravel().reverseContinue(); }
    StopInfo
    reverseStep(uint64_t n = 1)
    {
        return timeTravel().reverseStep(n);
    }
    StopInfo runToEvent(size_t n) { return timeTravel().runToEvent(n); }

    ReplayLog &replayLog() { return log_; }
    ///@}

    /** @deprecated Pull-style event lists; prefer DebugSession's
     *  ordered EventQueue. */
    const std::vector<WatchEvent> &watchEvents() const;
    const std::vector<BreakEvent> &breakEvents() const;
    const std::vector<ProtectionEvent> &protectionEvents() const;

    DebugBackend &backend() { return *backend_; }
    DebugTarget &target() { return target_; }

  private:
    DebugTarget &target_;
    DebuggerOptions opts_;
    std::unique_ptr<DebugBackend> backend_;
    std::vector<WatchSpec> watches_;
    std::vector<BreakSpec> breaks_;
    bool attached_ = false;

    ReplayLog log_;
    std::unique_ptr<TimeTravel> tt_;
    TimeTravelConfig ttCfg_{};
};

} // namespace dise

#endif // DISE_DEBUG_DEBUGGER_HH
