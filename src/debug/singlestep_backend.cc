#include "debug/singlestep_backend.hh"

namespace dise {

bool
SingleStepBackend::install(DebugTarget &target,
                           const std::vector<WatchSpec> &watches,
                           const std::vector<BreakSpec> &breaks)
{
    target_ = &target;
    for (const auto &w : watches)
        watches_.emplace_back(w);
    breaks_ = breaks;
    stmtSet_.insert(target.program.stmtBoundaries.begin(),
                    target.program.stmtBoundaries.end());
    // Single-stepping supports everything (that is its sole virtue).
    return true;
}

void
SingleStepBackend::prime(DebugTarget &target)
{
    for (auto &w : watches_)
        w.prime(target.mem);
}

StreamEnv
SingleStepBackend::streamEnv(DebugTarget &target)
{
    StreamEnv env = DebugBackend::streamEnv(target);
    env.stmtTraps = &stmtSet_;
    return env;
}

DebugAction
SingleStepBackend::onStatement(Addr pc)
{
    ++seq_;
    bool anyUser = false;
    bool anyPredicateFail = false;

    for (const auto &bp : breaks_) {
        if (bp.pc != pc)
            continue;
        bool pass = !bp.conditional ||
                    target_->mem.read(bp.condAddr, bp.condSize) ==
                        bp.condConst;
        if (pass) {
            recordBreak(static_cast<int>(&bp - breaks_.data()), pc,
                        seq_);
            anyUser = true;
        } else {
            anyPredicateFail = true;
        }
    }

    for (size_t i = 0; i < watches_.size(); ++i) {
        auto ch = watches_[i].evaluate(target_->mem);
        if (!ch)
            continue;
        if (watches_[i].predicatePasses(ch->newValue)) {
            recordWatch(static_cast<int>(i), *ch, seq_, pc);
            anyUser = true;
        } else {
            anyPredicateFail = true;
        }
    }

    // Every statement is one debugger transition; classify it.
    if (anyUser)
        return {TransitionKind::User};
    if (anyPredicateFail)
        return {TransitionKind::SpuriousPredicate};
    return {TransitionKind::SpuriousAddress};
}

} // namespace dise
