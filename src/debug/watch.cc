#include "debug/watch.hh"

#include <cstring>

#include "common/logging.hh"

namespace dise {

WatchState::WatchState(const WatchSpec &spec) : spec_(spec)
{
    if (spec_.kind == WatchKind::Range) {
        DISE_ASSERT(spec_.length > 0, "range watchpoint with zero length");
        shadow_.resize(spec_.length);
    }
}

void
WatchState::prime(const MainMemory &mem)
{
    switch (spec_.kind) {
      case WatchKind::Scalar:
        prevValue_ = mem.read(spec_.addr, spec_.size);
        break;
      case WatchKind::Indirect:
        curTarget_ = mem.read(spec_.addr, 8);
        prevValue_ = mem.read(curTarget_, spec_.size);
        break;
      case WatchKind::Range:
        mem.readBlock(spec_.addr, shadow_.data(), shadow_.size());
        break;
    }
}

std::optional<WatchChange>
WatchState::evaluate(const MainMemory &mem)
{
    switch (spec_.kind) {
      case WatchKind::Scalar: {
        uint64_t cur = mem.read(spec_.addr, spec_.size);
        if (cur == prevValue_)
            return std::nullopt;
        WatchChange ch{spec_.addr, prevValue_, cur};
        prevValue_ = cur;
        return ch;
      }
      case WatchKind::Indirect: {
        Addr target = mem.read(spec_.addr, 8);
        uint64_t cur = mem.read(target, spec_.size);
        curTarget_ = target;
        if (cur == prevValue_)
            return std::nullopt;
        WatchChange ch{target, prevValue_, cur};
        prevValue_ = cur;
        return ch;
      }
      case WatchKind::Range: {
        std::vector<uint8_t> cur(shadow_.size());
        mem.readBlock(spec_.addr, cur.data(), cur.size());
        if (std::memcmp(cur.data(), shadow_.data(), cur.size()) == 0)
            return std::nullopt;
        size_t i = 0;
        while (i < cur.size() && cur[i] == shadow_[i])
            ++i;
        // Report the first differing quad-aligned window for context.
        size_t base = i & ~size_t{7};
        uint64_t oldV = 0, newV = 0;
        for (size_t j = 0; j < 8 && base + j < cur.size(); ++j) {
            oldV |= static_cast<uint64_t>(shadow_[base + j]) << (8 * j);
            newV |= static_cast<uint64_t>(cur[base + j]) << (8 * j);
        }
        WatchChange ch{spec_.addr + base, oldV, newV};
        shadow_ = std::move(cur);
        return ch;
      }
    }
    return std::nullopt;
}

bool
WatchState::overlaps(Addr addr, unsigned bytes) const
{
    Addr lo = addr;
    Addr hi = addr + bytes;
    switch (spec_.kind) {
      case WatchKind::Scalar:
        return lo < spec_.addr + spec_.size && spec_.addr < hi;
      case WatchKind::Indirect:
        // Touches either the pointer cell or its current target.
        if (lo < spec_.addr + 8 && spec_.addr < hi)
            return true;
        return lo < curTarget_ + spec_.size && curTarget_ < hi;
      case WatchKind::Range:
        return lo < spec_.addr + spec_.length && spec_.addr < hi;
    }
    return false;
}

std::vector<std::pair<Addr, uint64_t>>
WatchState::staticRegions() const
{
    switch (spec_.kind) {
      case WatchKind::Scalar:
        return {{spec_.addr, spec_.size}};
      case WatchKind::Indirect:
        // Only the pointer cell is statically known.
        return {{spec_.addr, 8}};
      case WatchKind::Range:
        return {{spec_.addr, spec_.length}};
    }
    return {};
}

} // namespace dise
