/**
 * @file
 * Single-stepping backend: the naive implementation that transfers
 * control to the debugger after every source-level statement and
 * re-evaluates every watchpoint there. Every statement therefore costs
 * one debugger transition, nearly all of them spurious — the paper's
 * 6,000-40,000x slowdown case.
 */

#ifndef DISE_DEBUG_SINGLESTEP_BACKEND_HH
#define DISE_DEBUG_SINGLESTEP_BACKEND_HH

#include <unordered_set>

#include "debug/backend.hh"

namespace dise {

class SingleStepBackend : public DebugBackend
{
  public:
    std::string name() const override { return "single-stepping"; }

    bool install(DebugTarget &target, const std::vector<WatchSpec> &watches,
                 const std::vector<BreakSpec> &breaks) override;

    void prime(DebugTarget &target) override;

    StreamEnv streamEnv(DebugTarget &target) override;

    DebugAction onStatement(Addr pc) override;

  private:
    DebugTarget *target_ = nullptr;
    std::unordered_set<Addr> stmtSet_;
};

} // namespace dise

#endif // DISE_DEBUG_SINGLESTEP_BACKEND_HH
