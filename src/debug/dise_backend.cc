#include "debug/dise_backend.hh"

#include "asm/assembler.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "cpu/loader.hh"
#include "isa/encoding.hh"

namespace dise {

namespace {

/** DISE register allocation used by generated productions. */
constexpr RegId ScratchA = dr(0); ///< temp / handler t0 stash / ccall cond
constexpr RegId StoreAddr = dr(1); ///< store address (to handler)
constexpr RegId MatchRes = dr(2);  ///< accumulated match result
constexpr RegId Dar0 = dr(3);      ///< watched address 0 / real addr
constexpr RegId Dar1 = dr(4);      ///< watched address 1 / dpv / mask
constexpr RegId Dhdlr = dr(5);     ///< handler entry PC
constexpr RegId Aux0 = dr(6);      ///< bloom base / range lo
constexpr RegId Aux1 = dr(7);      ///< dseg tag (protection) / range hi

TRegField
R(RegId r)
{
    return TRegField::reg(r);
}

/** Append template instructions materializing a constant (mirrors
 *  Assembler::li for the address ranges our memory map uses). */
void
emitLi(std::vector<TemplateInst> &seq, RegId rd, uint64_t value)
{
    int64_t sv = static_cast<int64_t>(value);
    if (fitsSigned(sv, 14)) {
        seq.push_back(TemplateInst::mem(Opcode::LDA, R(rd),
                                        TImmField::imm(sv), R(reg::zero)));
        return;
    }
    DISE_ASSERT(fitsSigned(sv, 27), "emitLi: constant out of range");
    int64_t lo = sext(value & 0x3fff, 14);
    int64_t hi = static_cast<int64_t>(value - lo) >> 14;
    seq.push_back(TemplateInst::mem(Opcode::LDA, R(rd), TImmField::imm(hi),
                                    R(reg::zero)));
    seq.push_back(TemplateInst::opImm(Opcode::SLL_I, R(rd), 14, R(rd)));
    seq.push_back(TemplateInst::mem(Opcode::LDA, R(rd), TImmField::imm(lo),
                                    R(rd)));
}

Opcode
loadOpForSize(unsigned size)
{
    switch (size) {
      case 8: return Opcode::LDQ;
      case 4: return Opcode::LDL;
      case 2: return Opcode::LDW;
      case 1: return Opcode::LDB;
    }
    panic("bad watch size ", size);
}

/** Host-side value read matching the target's load semantics. */
uint64_t
readLikeTarget(const MainMemory &mem, Addr addr, unsigned size)
{
    if (size == 4)
        return static_cast<uint64_t>(mem.readSigned(addr, 4));
    return mem.read(addr, size);
}

} // namespace

void
DiseBackend::resolveStrategy(const std::vector<WatchSpec> &watches)
{
    if (opts_.strategy != MultiMatch::Auto) {
        strategy_ = opts_.strategy;
        return;
    }
    bool anyRange = false;
    bool anyIndirect = false;
    size_t addrCount = 0;
    for (const auto &w : watches) {
        if (w.kind == WatchKind::Range)
            anyRange = true;
        if (w.kind == WatchKind::Indirect)
            anyIndirect = true;
        addrCount += w.kind == WatchKind::Indirect ? 2 : 1;
    }
    if (anyRange && watches.size() == 1)
        strategy_ = MultiMatch::RangeCheck;
    else if (!anyRange && addrCount <= (anyIndirect ? 2u : 3u))
        strategy_ = MultiMatch::Serial;
    else
        strategy_ = MultiMatch::BloomByte;
}

bool
DiseBackend::install(DebugTarget &target,
                     const std::vector<WatchSpec> &watches,
                     const std::vector<BreakSpec> &breaks)
{
    target_ = &target;
    breaks_ = breaks;
    for (const auto &w : watches)
        watches_.emplace_back(w);

    resolveStrategy(watches);

    // Variant applicability (Figure 7 discussion).
    if (opts_.variant != DiseVariant::MatchAddrEvalExpr) {
        if (watches.size() != 1 || watches[0].kind != WatchKind::Scalar)
            return false; // inline variants handle one scalar
    }
    if (strategy_ == MultiMatch::RangeCheck) {
        for (const auto &w : watches)
            if (w.kind != WatchKind::Range)
                return false;
        if (watches.size() != 1)
            return false;
    }
    if (strategy_ == MultiMatch::Serial) {
        // Indirect targets are retargeted at runtime via d_mtr and so
        // must occupy one of the two DISE dar registers.
        size_t slot = 0;
        for (const auto &w : watches) {
            if (w.kind == WatchKind::Indirect && slot + 1 >= 2)
                return false;
            slot += w.kind == WatchKind::Indirect ? 2 : 1;
        }
    }

    // ---- dseg layout -------------------------------------------------
    dsegBase_ = layout::DebuggerDataBase;
    uint64_t entryCount = 0;
    for (const auto &w : watches)
        entryCount += w.kind == WatchKind::Indirect ? 2 : 1;
    uint64_t off = EntriesOff + entryCount * EntryBytes;
    off = alignUp(off, 64);
    bloomBase_ = 0;
    if (strategy_ == MultiMatch::BloomByte ||
        strategy_ == MultiMatch::BloomBit) {
        off = alignUp(off, BloomBytes);
        bloomBase_ = dsegBase_ + off;
        off += BloomBytes;
    }
    shadowBase_ = 0;
    uint64_t shadowLen = 0;
    for (const auto &w : watches) {
        if (w.kind == WatchKind::Range)
            shadowLen += alignUp(w.length, 8) + 16; // quad slack both ends
    }
    if (shadowLen) {
        off = alignUp(off, 8);
        shadowBase_ = dsegBase_ + off;
        off += shadowLen;
    }
    dsegSize_ = alignUp(std::max<uint64_t>(off, 2048), 2048);
    uint64_t protRegion = 2048;
    while (protRegion < dsegSize_)
        protRegion <<= 1;
    protShift_ = log2i(protRegion);

    // Append the (zero-initialized) dseg to the program image.
    Program::Segment dseg;
    dseg.name = "dseg";
    dseg.base = dsegBase_;
    dseg.bytes.assign(dsegSize_, 0);
    target.program.segments.push_back(std::move(dseg));

    // ---- generated handler -------------------------------------------
    if (opts_.variant == DiseVariant::MatchAddrEvalExpr && !watches.empty())
        buildHandler(target);

    // ---- productions ---------------------------------------------------
    if (!watches.empty()) {
        Production p;
        p.name = "watch-stores";
        p.pattern = Pattern::forClass(OpClass::Store);
        p.replacement = buildStoreReplacement();
        replacementLen_ = p.replacement.size();
        target.engine.addProduction(std::move(p));

        if (opts_.excludeStackStores) {
            Production sp;
            sp.name = "skip-stack-stores";
            sp.pattern = Pattern::forClass(OpClass::Store);
            sp.pattern.baseReg = reg::sp;
            sp.replacement = {TemplateInst::trigInst()};
            target.engine.addProduction(std::move(sp));
        }
    }

    installBreakpoints(target);
    return true;
}

std::vector<TemplateInst>
DiseBackend::buildStoreReplacement()
{
    std::vector<TemplateInst> seq;
    const bool cc = opts_.condCallTrap;

    // Optional Figure 2f protection prologue: reconstruct the store
    // address first and trap if it falls inside the debugger's dseg.
    auto emitAddr = [&] {
        seq.push_back(TemplateInst::mem(Opcode::LDA, R(StoreAddr),
                                        TImmField::trigImm(),
                                        TRegField::trigRb()));
    };
    bool addrDone = false;
    if (opts_.protectDebuggerData) {
        emitAddr();
        addrDone = true;
        seq.push_back(TemplateInst::opImm(Opcode::SRL_I, R(StoreAddr),
                                          static_cast<int64_t>(protShift_),
                                          R(MatchRes)));
        seq.push_back(TemplateInst::op3(Opcode::SUBQ, R(MatchRes), R(Aux1),
                                        R(MatchRes)));
        seq.push_back(TemplateInst::opImm(Opcode::CMPEQ_I, R(MatchRes), 0,
                                          R(ScratchA)));
        if (cc) {
            TemplateInst t;
            t.op = Opcode::CTRAP;
            t.ra = R(ScratchA);
            t.imm = TImmField::imm(TrapProtection);
            seq.push_back(t);
        } else {
            TemplateInst b;
            b.op = Opcode::D_BNE;
            b.ra = R(MatchRes);
            b.imm = TImmField::imm(1);
            seq.push_back(b); // skip trap when outside dseg
            TemplateInst t;
            t.op = Opcode::TRAP;
            t.imm = TImmField::imm(TrapProtection);
            seq.push_back(t);
        }
    }

    // The original store (T.INST).
    seq.push_back(TemplateInst::trigInst());
    if (!addrDone)
        emitAddr();

    auto quadAlign = [&] {
        seq.push_back(TemplateInst::opImm(Opcode::BIC_I, R(StoreAddr), 7,
                                          R(StoreAddr)));
    };

    // Tail: transfer control to the handler / trap on condition in reg.
    auto emitCallTail = [&](RegId cond) {
        if (cc) {
            TemplateInst t;
            t.op = Opcode::D_CCALL;
            t.ra = R(cond);
            t.rb = R(Dhdlr);
            seq.push_back(t);
        } else {
            TemplateInst b;
            b.op = Opcode::D_BEQ;
            b.ra = R(cond);
            b.imm = TImmField::imm(1); // skip call when no match
            seq.push_back(b);
            TemplateInst c;
            c.op = Opcode::D_CALL;
            c.rb = R(Dhdlr);
            seq.push_back(c);
        }
    };
    auto emitTrapTail = [&](RegId cond) {
        if (cc) {
            TemplateInst t;
            t.op = Opcode::CTRAP;
            t.ra = R(cond);
            t.imm = TImmField::imm(TrapWatchpoint);
            seq.push_back(t);
        } else {
            TemplateInst b;
            b.op = Opcode::D_BEQ;
            b.ra = R(cond);
            b.imm = TImmField::imm(1);
            seq.push_back(b);
            TemplateInst t;
            t.op = Opcode::TRAP;
            t.imm = TImmField::imm(TrapWatchpoint);
            seq.push_back(t);
        }
    };

    switch (opts_.variant) {
      case DiseVariant::EvalExpr: {
        // Figure 2a/2b: load the watched value and compare to dpv.
        const WatchSpec &w = watches_[0].spec();
        seq.push_back(TemplateInst::mem(loadOpForSize(w.size), R(StoreAddr),
                                        TImmField::imm(0), R(Dar0)));
        seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(StoreAddr),
                                        R(Dar1), R(MatchRes)));
        seq.push_back(TemplateInst::opImm(Opcode::CMPEQ_I, R(MatchRes), 0,
                                          R(MatchRes))); // changed?
        if (w.conditional) {
            emitLi(seq, ScratchA, w.predConst);
            seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(StoreAddr),
                                            R(ScratchA), R(ScratchA)));
            seq.push_back(TemplateInst::op3(Opcode::AND, R(MatchRes),
                                            R(ScratchA), R(MatchRes)));
        }
        emitTrapTail(MatchRes);
        return seq;
      }

      case DiseVariant::MatchAddrValue: {
        // Figure 7 third variant: exact address match plus a value
        // comparison against dpv, all inline, no loads.
        const WatchSpec &w = watches_[0].spec();
        seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(StoreAddr),
                                        R(Dar0), R(MatchRes)));
        seq.push_back(TemplateInst::op3(Opcode::CMPEQ, TRegField::trigRa(),
                                        R(Dar1), R(ScratchA)));
        seq.push_back(TemplateInst::opImm(Opcode::CMPEQ_I, R(ScratchA), 0,
                                          R(ScratchA)));
        seq.push_back(TemplateInst::op3(Opcode::AND, R(MatchRes),
                                        R(ScratchA), R(MatchRes)));
        if (w.conditional) {
            emitLi(seq, ScratchA, w.predConst);
            seq.push_back(TemplateInst::op3(Opcode::CMPEQ,
                                            TRegField::trigRa(),
                                            R(ScratchA), R(ScratchA)));
            seq.push_back(TemplateInst::op3(Opcode::AND, R(MatchRes),
                                            R(ScratchA), R(MatchRes)));
        }
        emitTrapTail(MatchRes);
        return seq;
      }

      case DiseVariant::MatchAddrEvalExpr:
        break;
    }

    // Match-Address variants: align, match, call handler.
    switch (strategy_) {
      case MultiMatch::Serial: {
        quadAlign();
        // Collect the quad-aligned addresses to match.
        std::vector<Addr> quads;
        for (const auto &ws : watches_) {
            const WatchSpec &w = ws.spec();
            if (w.kind == WatchKind::Indirect) {
                quads.push_back(alignDown(w.addr, 8)); // the pointer cell
                quads.push_back(0); // target: runtime value, reg slot
            } else {
                quads.push_back(alignDown(w.addr, 8));
            }
        }
        // First two live in DISE registers (dr3/dr4), the rest are
        // materialized inline: sequence length grows linearly (Fig. 6).
        for (size_t i = 0; i < quads.size(); ++i) {
            RegId addrReg = ScratchA;
            if (i == 0)
                addrReg = Dar0;
            else if (i == 1)
                addrReg = Dar1;
            else
                emitLi(seq, ScratchA, quads[i]);
            RegId res = i == 0 ? MatchRes : ScratchA;
            seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(StoreAddr),
                                            R(addrReg), R(res)));
            if (i != 0)
                seq.push_back(TemplateInst::op3(Opcode::BIS, R(MatchRes),
                                                R(res), R(MatchRes)));
        }
        emitCallTail(MatchRes);
        break;
      }

      case MultiMatch::RangeCheck: {
        quadAlign();
        bool hiInReg = !opts_.protectDebuggerData;
        seq.push_back(TemplateInst::op3(Opcode::CMPULE, R(Aux0),
                                        R(StoreAddr), R(MatchRes)));
        if (hiInReg) {
            seq.push_back(TemplateInst::op3(Opcode::CMPULE, R(StoreAddr),
                                            R(Aux1), R(ScratchA)));
        } else {
            const WatchSpec &w = watches_[0].spec();
            Addr hi = alignDown(w.addr + w.length - 1, 8);
            emitLi(seq, ScratchA, hi);
            seq.push_back(TemplateInst::op3(Opcode::CMPULE, R(StoreAddr),
                                            R(ScratchA), R(ScratchA)));
        }
        seq.push_back(TemplateInst::op3(Opcode::AND, R(MatchRes),
                                        R(ScratchA), R(MatchRes)));
        emitCallTail(MatchRes);
        break;
      }

      case MultiMatch::BloomByte: {
        quadAlign();
        seq.push_back(TemplateInst::opImm(Opcode::SRL_I, R(StoreAddr), 3,
                                          R(MatchRes)));
        seq.push_back(TemplateInst::op3(Opcode::AND, R(MatchRes), R(Dar1),
                                        R(MatchRes))); // dr4 = mask
        seq.push_back(TemplateInst::op3(Opcode::ADDQ, R(MatchRes), R(Aux0),
                                        R(MatchRes))); // dr6 = bloom base
        seq.push_back(TemplateInst::mem(Opcode::LDB, R(MatchRes),
                                        TImmField::imm(0), R(MatchRes)));
        emitCallTail(MatchRes);
        break;
      }

      case MultiMatch::BloomBit: {
        quadAlign();
        seq.push_back(TemplateInst::opImm(Opcode::SRL_I, R(StoreAddr), 3,
                                          R(MatchRes))); // quad index
        seq.push_back(TemplateInst::opImm(Opcode::SRL_I, R(MatchRes), 3,
                                          R(ScratchA))); // byte index
        seq.push_back(TemplateInst::op3(Opcode::AND, R(ScratchA), R(Dar1),
                                        R(ScratchA)));
        seq.push_back(TemplateInst::op3(Opcode::ADDQ, R(ScratchA), R(Aux0),
                                        R(ScratchA)));
        seq.push_back(TemplateInst::mem(Opcode::LDB, R(ScratchA),
                                        TImmField::imm(0), R(ScratchA)));
        seq.push_back(TemplateInst::opImm(Opcode::AND_I, R(MatchRes), 7,
                                          R(MatchRes))); // bit index
        seq.push_back(TemplateInst::op3(Opcode::SRL, R(ScratchA),
                                        R(MatchRes), R(ScratchA)));
        seq.push_back(TemplateInst::opImm(Opcode::AND_I, R(ScratchA), 1,
                                          R(ScratchA)));
        emitCallTail(ScratchA);
        break;
      }

      case MultiMatch::Auto:
        panic("strategy not resolved");
    }
    return seq;
}

void
DiseBackend::buildHandler(DebugTarget &target)
{
    handlerBase_ = layout::DebuggerTextBase;
    Assembler a;
    a.data(dsegBase_ + dsegSize_); // dummy, unused
    a.text(handlerBase_);
    using namespace reg;

    a.label("dise_handler");
    // Prologue: treat every register as callee-saved (Fig. 2e). t0 is
    // stashed in a DISE scratch register so it can hold the dseg base.
    a.d_mtr(dr(0), t0);
    a.li(t0, dsegBase_);
    a.stq(t1, SaveAreaOff + 8, t0);
    a.stq(t2, SaveAreaOff + 16, t0);
    a.stq(t3, SaveAreaOff + 24, t0);
    a.stq(t4, SaveAreaOff + 32, t0);
    a.stq(t5, SaveAreaOff + 40, t0);
    a.d_mfr(t1, dr(1)); // quad-aligned store address

    // Track which serial dar register (if any) holds each indirect
    // target so the handler can retarget it with d_mtr.
    size_t entryIdx = 0;
    size_t quadSlot = 0; // serial address slot counter
    uint64_t shadowCursor = shadowBase_;

    auto entOff = [&](size_t idx, uint64_t field) {
        return static_cast<int64_t>(EntriesOff + idx * EntryBytes + field);
    };

    auto emitScalarCheck = [&](const WatchSpec &w, size_t ent,
                               const std::string &next) {
        a.ldq(t2, entOff(ent, EntAligned), t0);
        a.cmpeq(t1, t2, t3);
        a.beq(t3, next);
        a.ldq(t2, entOff(ent, EntReal), t0);
        switch (w.size) {
          case 8: a.ldq(t3, 0, t2); break;
          case 4: a.ldl(t3, 0, t2); break;
          case 2: a.ldw(t3, 0, t2); break;
          case 1: a.ldb(t3, 0, t2); break;
        }
        a.ldq(t4, entOff(ent, EntPrev), t0);
        a.cmpeq(t3, t4, t4);
        a.bne(t4, next); // silent store: pruned in-application
        a.stq(t3, entOff(ent, EntPrev), t0);
        if (w.conditional) {
            a.ldq(t4, entOff(ent, EntPred), t0);
            a.cmpeq(t3, t4, t4);
            a.beq(t4, next); // predicate false: pruned in-application
        }
        a.trap(TrapWatchpoint);
    };

    for (size_t i = 0; i < watches_.size(); ++i) {
        const WatchSpec &w = watches_[i].spec();
        std::string next = a.genLabel("wpnext");
        switch (w.kind) {
          case WatchKind::Scalar:
            emitScalarCheck(w, entryIdx, next);
            a.label(next);
            ++entryIdx;
            ++quadSlot;
            break;

          case WatchKind::Indirect: {
            size_t entP = entryIdx;
            size_t entT = entryIdx + 1;
            size_t targetSlot = quadSlot + 1;
            std::string tgtChk = a.genLabel("tgtchk");
            // Pointer-cell write: retarget the watch.
            a.ldq(t2, entOff(entP, EntAligned), t0);
            a.cmpeq(t1, t2, t3);
            a.beq(t3, tgtChk);
            a.ldq(t2, entOff(entP, EntReal), t0);
            a.ldq(t3, 0, t2); // new pointer value
            a.ldq(t4, entOff(entP, EntPrev), t0);
            a.cmpeq(t3, t4, t4);
            a.bne(t4, tgtChk); // pointer unchanged
            a.stq(t3, entOff(entP, EntPrev), t0);
            a.stq(t3, entOff(entT, EntReal), t0);
            a.bic(t3, 7, t4);
            a.stq(t4, entOff(entT, EntAligned), t0);
            if (strategy_ == MultiMatch::Serial && targetSlot < 2) {
                // Refresh the dar register holding the target address.
                a.d_mtr(targetSlot == 0 ? dr(3) : dr(4), t4);
            } else if (strategy_ == MultiMatch::BloomByte) {
                a.srl(t4, 3, t5);
                a.li(t2, BloomBytes - 1);
                a.and_(t5, t2, t5);
                a.li(t2, bloomBase_);
                a.addq(t5, t2, t5);
                a.li(t2, 1);
                a.stb(t2, 0, t5);
            } else if (strategy_ == MultiMatch::BloomBit) {
                a.srl(t4, 3, t5); // quad index
                a.srl(t5, 3, t2); // byte index
                a.li(t4, BloomBytes - 1);
                a.and_(t2, t4, t2); // masked byte index
                a.li(t4, bloomBase_);
                a.addq(t2, t4, t2); // byte address
                a.and_(t5, 7, t5);  // bit index
                a.li(t4, 1);
                a.sll(t4, t5, t5);  // bit mask
                a.ldb(t4, 0, t2);
                a.bis(t4, t5, t4);
                a.stb(t4, 0, t2);
            }
            // Did the expression value change across the retarget?
            a.ldq(t2, entOff(entT, EntReal), t0);
            switch (w.size) {
              case 8: a.ldq(t3, 0, t2); break;
              case 4: a.ldl(t3, 0, t2); break;
              case 2: a.ldw(t3, 0, t2); break;
              case 1: a.ldb(t3, 0, t2); break;
            }
            a.ldq(t4, entOff(entT, EntPrev), t0);
            a.cmpeq(t3, t4, t4);
            a.bne(t4, next);
            a.stq(t3, entOff(entT, EntPrev), t0);
            if (w.conditional) {
                a.ldq(t4, entOff(entT, EntPred), t0);
                a.cmpeq(t3, t4, t4);
                a.beq(t4, next);
            }
            a.trap(TrapWatchpoint);
            a.br(next);
            // The datum *p currently points at.
            a.label(tgtChk);
            emitScalarCheck(w, entT, next);
            a.label(next);
            entryIdx += 2;
            quadSlot += 2;
            break;
          }

          case WatchKind::Range: {
            a.ldq(t2, entOff(entryIdx, EntAligned), t0); // lo quad
            a.cmpult(t1, t2, t3);
            a.bne(t3, next);
            a.ldq(t4, entOff(entryIdx, EntReal), t0); // hi quad
            a.cmpult(t4, t1, t3);
            a.bne(t3, next);
            a.ldq(t3, 0, t1); // current quad at the store location
            a.ldq(t5, entOff(entryIdx, EntPrev), t0); // shadow base
            a.subq(t1, t2, t2);
            a.addq(t5, t2, t5);
            a.ldq(t4, 0, t5); // shadow quad
            a.cmpeq(t3, t4, t4);
            a.bne(t4, next);
            a.stq(t3, 0, t5);
            if (w.conditional) {
                a.ldq(t4, entOff(entryIdx, EntPred), t0);
                a.cmpeq(t3, t4, t4);
                a.beq(t4, next);
            }
            a.trap(TrapWatchpoint);
            a.label(next);
            shadowCursor += alignUp(w.length, 8) + 16;
            ++entryIdx;
            ++quadSlot;
            break;
          }
        }
    }
    (void)shadowCursor;

    // Epilogue.
    a.ldq(t1, SaveAreaOff + 8, t0);
    a.ldq(t2, SaveAreaOff + 16, t0);
    a.ldq(t3, SaveAreaOff + 24, t0);
    a.ldq(t4, SaveAreaOff + 32, t0);
    a.ldq(t5, SaveAreaOff + 40, t0);
    a.d_mfr(t0, dr(0));
    a.d_ret();

    Program handlerProg = a.finish("dise_handler");
    for (auto &seg : handlerProg.segments) {
        if (seg.name == "text") {
            handlerInsts_ = seg.bytes.size() / 4;
            seg.name = "dise_handler_text";
            target.program.segments.push_back(seg);
        }
    }
    handlerBase_ = handlerProg.symbol("dise_handler");
}

void
DiseBackend::installBreakpoints(DebugTarget &target)
{
    const bool cc = opts_.condCallTrap;
    for (size_t i = 0; i < breaks_.size(); ++i) {
        const BreakSpec &bp = breaks_[i];
        Production p;
        p.name = "break-" + std::to_string(i);
        Inst original{};
        if (opts_.breakpointsByCodeword) {
            // Statically patch the breakpoint instruction into a
            // codeword (the paper's first breakpoint flavor).
            bool patched = false;
            for (auto &seg : target.program.segments) {
                if (!seg.executable || bp.pc < seg.base ||
                    bp.pc + 4 > seg.base + seg.bytes.size())
                    continue;
                size_t off = bp.pc - seg.base;
                uint32_t w = 0;
                for (int b = 3; b >= 0; --b)
                    w = (w << 8) | seg.bytes[off + b];
                auto dec = decode(w);
                DISE_ASSERT(dec, "breakpoint target is not code");
                original = *dec;
                uint32_t cw = encode(
                    makeSystem(Opcode::CODEWORD, static_cast<int64_t>(i)));
                for (int b = 0; b < 4; ++b)
                    seg.bytes[off + b] = (cw >> (8 * b)) & 0xff;
                patched = true;
            }
            DISE_ASSERT(patched, "breakpoint pc not in any text segment");
            p.pattern = Pattern::forCodeword(static_cast<int64_t>(i));
        } else {
            // Hardware-breakpoint-register flavor: exact-PC pattern.
            p.pattern = Pattern::forPc(bp.pc);
            p.pattern.opclass.reset();
        }

        std::vector<TemplateInst> seq;
        int64_t code = TrapBreakBase + static_cast<int64_t>(i);
        if (bp.conditional) {
            // Compile the condition into the replacement (Section 4.3),
            // using DISE registers dr1/dr0 as temporaries.
            emitLi(seq, StoreAddr, bp.condAddr);
            seq.push_back(TemplateInst::mem(loadOpForSize(bp.condSize),
                                            R(StoreAddr), TImmField::imm(0),
                                            R(StoreAddr)));
            emitLi(seq, ScratchA, bp.condConst);
            seq.push_back(TemplateInst::op3(Opcode::CMPEQ, R(StoreAddr),
                                            R(ScratchA), R(MatchRes)));
            if (cc) {
                TemplateInst t;
                t.op = Opcode::CTRAP;
                t.ra = R(MatchRes);
                t.imm = TImmField::imm(code);
                seq.push_back(t);
            } else {
                TemplateInst b;
                b.op = Opcode::D_BEQ;
                b.ra = R(MatchRes);
                b.imm = TImmField::imm(1);
                seq.push_back(b);
                TemplateInst t;
                t.op = Opcode::TRAP;
                t.imm = TImmField::imm(code);
                seq.push_back(t);
            }
        } else {
            TemplateInst t;
            t.op = Opcode::TRAP;
            t.imm = TImmField::imm(code);
            seq.push_back(t);
        }
        if (opts_.breakpointsByCodeword)
            seq.push_back(TemplateInst::fixed(original));
        else
            seq.push_back(TemplateInst::trigInst());
        p.replacement = std::move(seq);
        target.engine.addProduction(std::move(p));
    }
}

void
DiseBackend::bloomInsert(DebugTarget &target, Addr quadAddr)
{
    uint64_t quadIdx = quadAddr >> 3;
    if (strategy_ == MultiMatch::BloomByte) {
        Addr slot = bloomBase_ + (quadIdx & (BloomBytes - 1));
        target.mem.write(slot, 1, 1);
    } else {
        uint64_t byteIdx = (quadIdx >> 3) & (BloomBytes - 1);
        unsigned bit = quadIdx & 7;
        Addr slot = bloomBase_ + byteIdx;
        uint64_t v = target.mem.read(slot, 1);
        target.mem.write(slot, 1, v | (uint64_t{1} << bit));
    }
}

void
DiseBackend::prime(DebugTarget &target)
{
    for (auto &ws : watches_)
        ws.prime(target.mem);

    // Populate dseg entries and the DISE register file.
    size_t entryIdx = 0;
    size_t quadSlot = 0;
    uint64_t shadowCursor = shadowBase_;
    std::vector<Addr> serialQuads;

    for (auto &ws : watches_) {
        const WatchSpec &w = ws.spec();
        Addr entBase = dsegBase_ + EntriesOff + entryIdx * EntryBytes;
        switch (w.kind) {
          case WatchKind::Scalar: {
            Addr aligned = alignDown(w.addr, 8);
            target.mem.write(entBase + EntAligned, 8, aligned);
            target.mem.write(entBase + EntReal, 8, w.addr);
            target.mem.write(entBase + EntPrev, 8,
                             readLikeTarget(target.mem, w.addr, w.size));
            target.mem.write(entBase + EntPred, 8, w.predConst);
            serialQuads.push_back(aligned);
            if (strategy_ == MultiMatch::BloomByte ||
                strategy_ == MultiMatch::BloomBit)
                bloomInsert(target, aligned);
            ++entryIdx;
            ++quadSlot;
            break;
          }
          case WatchKind::Indirect: {
            Addr pAligned = alignDown(w.addr, 8);
            uint64_t pVal = target.mem.read(w.addr, 8);
            Addr tAligned = alignDown(pVal, 8);
            // Pointer-cell entry.
            target.mem.write(entBase + EntAligned, 8, pAligned);
            target.mem.write(entBase + EntReal, 8, w.addr);
            target.mem.write(entBase + EntPrev, 8, pVal);
            target.mem.write(entBase + EntPred, 8, 0);
            // Target entry.
            Addr entT = entBase + EntryBytes;
            target.mem.write(entT + EntAligned, 8, tAligned);
            target.mem.write(entT + EntReal, 8, pVal);
            target.mem.write(entT + EntPrev, 8,
                             readLikeTarget(target.mem, pVal, w.size));
            target.mem.write(entT + EntPred, 8, w.predConst);
            serialQuads.push_back(pAligned);
            serialQuads.push_back(tAligned);
            if (strategy_ == MultiMatch::BloomByte ||
                strategy_ == MultiMatch::BloomBit) {
                bloomInsert(target, pAligned);
                bloomInsert(target, tAligned);
            }
            entryIdx += 2;
            quadSlot += 2;
            break;
          }
          case WatchKind::Range: {
            Addr lo = alignDown(w.addr, 8);
            Addr hi = alignDown(w.addr + w.length - 1, 8);
            target.mem.write(entBase + EntAligned, 8, lo);
            target.mem.write(entBase + EntReal, 8, hi);
            target.mem.write(entBase + EntPrev, 8, shadowCursor);
            target.mem.write(entBase + EntPred, 8, w.predConst);
            // Fill the shadow copy quad by quad.
            for (Addr q = lo; q <= hi; q += 8) {
                target.mem.write(shadowCursor + (q - lo), 8,
                                 target.mem.read(q, 8));
                if (strategy_ == MultiMatch::BloomByte ||
                    strategy_ == MultiMatch::BloomBit)
                    bloomInsert(target, q);
            }
            shadowCursor += alignUp(w.length, 8) + 16;
            ++entryIdx;
            ++quadSlot;
            break;
          }
        }
    }
    (void)quadSlot;

    // DISE register file.
    ArchState &arch = target.arch;
    arch.writeDise(5, handlerBase_); // dhdlr
    if (opts_.protectDebuggerData)
        arch.writeDise(7, dsegBase_ >> protShift_);

    switch (opts_.variant) {
      case DiseVariant::EvalExpr:
      case DiseVariant::MatchAddrValue: {
        const WatchSpec &w = watches_[0].spec();
        arch.writeDise(3, w.addr); // dar: real address
        arch.writeDise(4, readLikeTarget(target.mem, w.addr, w.size));
        return;
      }
      case DiseVariant::MatchAddrEvalExpr:
        break;
    }

    switch (strategy_) {
      case MultiMatch::Serial:
        if (serialQuads.size() > 0)
            arch.writeDise(3, serialQuads[0]);
        if (serialQuads.size() > 1)
            arch.writeDise(4, serialQuads[1]);
        break;
      case MultiMatch::RangeCheck: {
        const WatchSpec &w = watches_[0].spec();
        arch.writeDise(6, alignDown(w.addr, 8));
        if (!opts_.protectDebuggerData)
            arch.writeDise(7, alignDown(w.addr + w.length - 1, 8));
        break;
      }
      case MultiMatch::BloomByte:
      case MultiMatch::BloomBit:
        arch.writeDise(4, BloomBytes - 1); // mask
        arch.writeDise(6, bloomBase_);
        break;
      case MultiMatch::Auto:
        panic("strategy not resolved");
    }
}

DebugAction
DiseBackend::onTrap(const MicroOp &op)
{
    ++seq_;
    int64_t code = op.inst.imm;
    // Traps raised inside the generated handler carry the trigger
    // store's PC in their saved <PC:DISEPC> context.
    Addr pc = op.inHandler ? op.handlerCallerPc : op.pc;

    if (code >= TrapBreakBase) {
        int idx = static_cast<int>(code - TrapBreakBase);
        recordBreak(idx, pc, seq_);
        return {TransitionKind::User};
    }
    if (code == TrapProtection) {
        // dr1 still holds the offending store address.
        recordProtection(pc, target_->arch.readDise(1));
        return {TransitionKind::User};
    }

    // Watchpoint trap: the in-application logic already filtered silent
    // stores and false predicates, so this transition reaches the user.
    for (size_t i = 0; i < watches_.size(); ++i) {
        auto ch = watches_[i].evaluate(target_->mem);
        if (ch && watches_[i].predicatePasses(ch->newValue))
            recordWatch(static_cast<int>(i), *ch, seq_, pc);
    }
    if (opts_.variant != DiseVariant::MatchAddrEvalExpr) {
        // Inline variants keep dpv in dr4; the debugger refreshes it
        // during this (already user-bound) transition.
        const WatchSpec &w = watches_[0].spec();
        target_->arch.writeDise(
            4, readLikeTarget(target_->mem, w.addr, w.size));
    }
    return {TransitionKind::User};
}

} // namespace dise
