#include "debug/rewrite_backend.hh"

#include "asm/assembler.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "cpu/loader.hh"

namespace dise {

namespace {

using reg::sp;
using reg::t0;
using reg::t1;
using reg::t2;
using reg::t3;
using reg::t4;
using reg::t5;
using reg::zero;

AsmItem
itemInst(const Inst &inst)
{
    AsmItem it;
    it.kind = AsmItem::Kind::Inst;
    it.inst = inst;
    return it;
}

AsmItem
itemBranch(const Inst &inst, const std::string &label)
{
    AsmItem it = itemInst(inst);
    it.label = label;
    return it;
}

AsmItem
itemLabel(const std::string &name)
{
    AsmItem it;
    it.kind = AsmItem::Kind::Label;
    it.label = name;
    return it;
}

/** Materialize a constant (same expansion the assembler's li uses). */
void
emitLi(std::vector<AsmItem> &items, RegId rd, uint64_t value)
{
    int64_t sv = static_cast<int64_t>(value);
    if (fitsSigned(sv, 14)) {
        items.push_back(itemInst(makeMem(Opcode::LDA, rd, sv, zero)));
        return;
    }
    DISE_ASSERT(fitsSigned(sv, 27), "rewrite li out of range");
    int64_t lo = sext(value & 0x3fff, 14);
    int64_t hi = static_cast<int64_t>(value - lo) >> 14;
    items.push_back(itemInst(makeMem(Opcode::LDA, rd, hi, zero)));
    items.push_back(itemInst(makeOpImm(Opcode::SLL_I, rd, 14, rd)));
    items.push_back(itemInst(makeMem(Opcode::LDA, rd, lo, rd)));
}

Opcode
loadOpForSize(unsigned size)
{
    switch (size) {
      case 8: return Opcode::LDQ;
      case 4: return Opcode::LDL;
      case 2: return Opcode::LDW;
      case 1: return Opcode::LDB;
    }
    panic("bad watch size");
}

uint64_t
readLikeTarget(const MainMemory &mem, Addr addr, unsigned size)
{
    if (size == 4)
        return static_cast<uint64_t>(mem.readSigned(addr, 4));
    return mem.read(addr, size);
}

constexpr int64_t TrapWatch = 1;
constexpr int64_t TrapBreakBase = 0x100;

} // namespace

void
RewriteBackend::emitStoreStub(std::vector<AsmItem> &items,
                              const Inst &store, uint64_t stubId)
{
    std::string skip = "rw_skip_" + std::to_string(stubId);

    // Original store first (Fig. 2c ordering), then the check.
    items.push_back(itemInst(store));

    // Register scavenging: spill temporaries into the stack red zone.
    items.push_back(itemInst(makeMem(Opcode::STQ, t0, -8, sp)));
    items.push_back(itemInst(makeMem(Opcode::STQ, t1, -16, sp)));
    items.push_back(itemInst(makeMem(Opcode::STQ, t2, -24, sp)));

    // Reconstruct and align the store address.
    items.push_back(
        itemInst(makeMem(Opcode::LDA, t0, store.imm, store.rb)));
    items.push_back(itemInst(makeOpImm(Opcode::BIC_I, t0, 7, t0)));

    // Serial comparison against every watched location.
    bool first = true;
    for (const auto &ws : watches_) {
        const WatchSpec &w = ws.spec();
        if (w.kind == WatchKind::Range) {
            Addr lo = alignDown(w.addr, 8);
            Addr hi = alignDown(w.addr + w.length - 1, 8);
            emitLi(items, t1, lo);
            items.push_back(itemInst(makeOp(Opcode::CMPULE, t1, t0, t2)));
            emitLi(items, t1, hi);
            items.push_back(itemInst(makeOp(Opcode::CMPULE, t0, t1, t1)));
            items.push_back(itemInst(makeOp(Opcode::AND, t2, t1, t2)));
        } else {
            emitLi(items, t1, alignDown(w.addr, 8));
            if (first) {
                items.push_back(
                    itemInst(makeOp(Opcode::CMPEQ, t0, t1, t2)));
            } else {
                items.push_back(
                    itemInst(makeOp(Opcode::CMPEQ, t0, t1, t1)));
                items.push_back(
                    itemInst(makeOp(Opcode::BIS, t2, t1, t2)));
            }
        }
        first = false;
    }

    items.push_back(itemBranch(makeBranch(Opcode::BEQ, t2, 0), skip));
    items.push_back(itemInst(makeMem(Opcode::STQ, reg::ra, -32, sp)));
    items.push_back(
        itemBranch(makeBranch(Opcode::BSR, reg::ra, 0), "rw_handler"));
    items.push_back(itemInst(makeMem(Opcode::LDQ, reg::ra, -32, sp)));
    items.push_back(itemLabel(skip));
    items.push_back(itemInst(makeMem(Opcode::LDQ, t0, -8, sp)));
    items.push_back(itemInst(makeMem(Opcode::LDQ, t1, -16, sp)));
    items.push_back(itemInst(makeMem(Opcode::LDQ, t2, -24, sp)));
}

void
RewriteBackend::emitHandler(std::vector<AsmItem> &items)
{
    // Out-of-line evaluation routine. On entry t0 holds the aligned
    // store address (caller keeps it live across the call).
    items.push_back(itemLabel("rw_handler"));
    items.push_back(itemInst(makeMem(Opcode::STQ, t3, -40, sp)));
    items.push_back(itemInst(makeMem(Opcode::STQ, t4, -48, sp)));
    items.push_back(itemInst(makeMem(Opcode::STQ, t5, -56, sp)));

    uint64_t shadowCursor = shadowBase_;
    for (size_t i = 0; i < watches_.size(); ++i) {
        const WatchSpec &w = watches_[i].spec();
        std::string next = "rw_next_" + std::to_string(i);
        Addr prevSlot = rwsegBase_ + 8 * i;

        if (w.kind == WatchKind::Range) {
            Addr lo = alignDown(w.addr, 8);
            Addr hi = alignDown(w.addr + w.length - 1, 8);
            std::string fix = "rw_fix_" + std::to_string(i);
            emitLi(items, t4, lo);
            items.push_back(itemInst(makeOp(Opcode::CMPULT, t0, t4, t5)));
            items.push_back(
                itemBranch(makeBranch(Opcode::BNE, t5, 0), next));
            emitLi(items, t4, hi);
            items.push_back(itemInst(makeOp(Opcode::CMPULT, t4, t0, t5)));
            items.push_back(
                itemBranch(makeBranch(Opcode::BNE, t5, 0), next));
            // shadow slot = shadowBase + (addr - lo)
            emitLi(items, t4, lo);
            items.push_back(itemInst(makeOp(Opcode::SUBQ, t0, t4, t5)));
            emitLi(items, t4, shadowCursor);
            items.push_back(itemInst(makeOp(Opcode::ADDQ, t4, t5, t4)));
            items.push_back(itemInst(makeMem(Opcode::LDQ, t5, 0, t4)));
            items.push_back(itemInst(makeMem(Opcode::LDQ, t3, 0, t0)));
            items.push_back(itemInst(makeOp(Opcode::CMPEQ, t3, t5, t5)));
            items.push_back(
                itemBranch(makeBranch(Opcode::BNE, t5, 0), next));
            items.push_back(itemInst(makeMem(Opcode::STQ, t3, 0, t4)));
            if (w.conditional) {
                emitLi(items, t4, w.predConst);
                items.push_back(
                    itemInst(makeOp(Opcode::CMPEQ, t3, t4, t4)));
                items.push_back(
                    itemBranch(makeBranch(Opcode::BEQ, t4, 0), next));
            }
            items.push_back(itemInst(makeSystem(Opcode::TRAP, TrapWatch)));
            items.push_back(itemLabel(fix)); // label kept for symmetry
            shadowCursor += alignUp(w.length, 8) + 16;
        } else {
            emitLi(items, t4, alignDown(w.addr, 8));
            items.push_back(itemInst(makeOp(Opcode::CMPEQ, t0, t4, t4)));
            items.push_back(
                itemBranch(makeBranch(Opcode::BEQ, t4, 0), next));
            emitLi(items, t4, w.addr);
            items.push_back(
                itemInst(makeMem(loadOpForSize(w.size), t5, 0, t4)));
            emitLi(items, t4, prevSlot);
            items.push_back(itemInst(makeMem(Opcode::LDQ, t4, 0, t4)));
            items.push_back(itemInst(makeOp(Opcode::CMPEQ, t5, t4, t4)));
            items.push_back(
                itemBranch(makeBranch(Opcode::BNE, t4, 0), next));
            emitLi(items, t4, prevSlot);
            items.push_back(itemInst(makeMem(Opcode::STQ, t5, 0, t4)));
            if (w.conditional) {
                emitLi(items, t4, w.predConst);
                items.push_back(
                    itemInst(makeOp(Opcode::CMPEQ, t5, t4, t4)));
                items.push_back(
                    itemBranch(makeBranch(Opcode::BEQ, t4, 0), next));
            }
            items.push_back(itemInst(makeSystem(Opcode::TRAP, TrapWatch)));
        }
        items.push_back(itemLabel(next));
    }

    items.push_back(itemInst(makeMem(Opcode::LDQ, t3, -40, sp)));
    items.push_back(itemInst(makeMem(Opcode::LDQ, t4, -48, sp)));
    items.push_back(itemInst(makeMem(Opcode::LDQ, t5, -56, sp)));
    items.push_back(itemInst(makeJump(Opcode::RET, zero, reg::ra)));
}

bool
RewriteBackend::install(DebugTarget &target,
                        const std::vector<WatchSpec> &watches,
                        const std::vector<BreakSpec> &breaks)
{
    target_ = &target;
    breaks_ = breaks;
    if (!target.program.source)
        return false; // nothing to re-compile from

    bool haveRange = false;
    for (const auto &w : watches) {
        if (w.kind == WatchKind::Indirect)
            return false; // needs runtime re-compilation; unsupported
        if (w.kind == WatchKind::Range)
            haveRange = true;
        watches_.emplace_back(w);
    }
    if (haveRange && watches.size() != 1)
        return false;

    // rwseg layout: one prev-value quad per watchpoint, then shadows.
    rwsegBase_ = layout::DebuggerDataBase;
    uint64_t off = alignUp(8 * std::max<size_t>(watches.size(), 1), 8);
    shadowBase_ = rwsegBase_ + off;
    uint64_t shadowLen = 0;
    for (const auto &w : watches)
        if (w.kind == WatchKind::Range)
            shadowLen += alignUp(w.length, 8) + 16;
    uint64_t rwsegSize = alignUp(off + shadowLen + 64, 64);

    const AsmUnit &oldUnit = *target.program.source;
    AsmUnit unit;
    unit.entryLabel = oldUnit.entryLabel;
    unit.data = oldUnit.data;
    unit.text.name = oldUnit.text.name;
    unit.text.base = oldUnit.text.base;

    uint64_t oldWords = 0;
    for (const auto &item : oldUnit.text.items) {
        if (item.kind == AsmItem::Kind::Inst)
            oldWords += 1;
        else if (item.kind == AsmItem::Kind::La)
            oldWords += 3;
    }

    // Map breakpoint PCs to item indices.
    std::vector<std::pair<size_t, size_t>> bpAt; // (itemIdx, bpIdx)
    {
        Addr pc = oldUnit.text.base;
        for (size_t idx = 0; idx < oldUnit.text.items.size(); ++idx) {
            const auto &item = oldUnit.text.items[idx];
            for (size_t b = 0; b < breaks.size(); ++b)
                if (breaks[b].pc == pc && item.kind == AsmItem::Kind::Inst)
                    bpAt.emplace_back(idx, b);
            if (item.kind == AsmItem::Kind::Inst)
                pc += 4;
            else if (item.kind == AsmItem::Kind::La)
                pc += 12;
        }
    }

    uint64_t stubId = 0;
    for (size_t idx = 0; idx < oldUnit.text.items.size(); ++idx) {
        const auto &item = oldUnit.text.items[idx];
        auto &items = unit.text.items;

        for (const auto &[bpIdx, b] : bpAt) {
            if (bpIdx != idx)
                continue;
            const BreakSpec &bp = breaks[b];
            int64_t code = TrapBreakBase + static_cast<int64_t>(b);
            if (!bp.conditional) {
                items.push_back(itemInst(makeSystem(Opcode::TRAP, code)));
            } else {
                std::string skip = "rw_bskip_" + std::to_string(b);
                items.push_back(itemInst(makeMem(Opcode::STQ, t4, -8, sp)));
                items.push_back(
                    itemInst(makeMem(Opcode::STQ, t5, -16, sp)));
                emitLi(items, t4, bp.condAddr);
                items.push_back(itemInst(
                    makeMem(loadOpForSize(bp.condSize), t4, 0, t4)));
                emitLi(items, t5, bp.condConst);
                items.push_back(
                    itemInst(makeOp(Opcode::CMPEQ, t4, t5, t4)));
                items.push_back(
                    itemBranch(makeBranch(Opcode::BEQ, t4, 0), skip));
                items.push_back(itemInst(makeSystem(Opcode::TRAP, code)));
                items.push_back(itemLabel(skip));
                items.push_back(itemInst(makeMem(Opcode::LDQ, t4, -8, sp)));
                items.push_back(
                    itemInst(makeMem(Opcode::LDQ, t5, -16, sp)));
            }
        }

        if (item.kind == AsmItem::Kind::Inst && item.inst.isStore() &&
            !watches_.empty()) {
            emitStoreStub(items, item.inst, stubId++);
        } else {
            items.push_back(item);
        }
    }

    if (!watches_.empty())
        emitHandler(unit.text.items);

    Program rewritten = Assembler::assemble(unit);

    // Append the rewriter's data region.
    Program::Segment rwseg;
    rwseg.name = "rwseg";
    rwseg.base = rwsegBase_;
    rwseg.bytes.assign(rwsegSize, 0);
    rewritten.segments.push_back(std::move(rwseg));

    uint64_t newWords = rewritten.textWords();
    bloatFactor_ = oldWords
                       ? static_cast<double>(newWords) / oldWords
                       : 1.0;
    target.program = std::move(rewritten);
    return true;
}

void
RewriteBackend::prime(DebugTarget &target)
{
    for (auto &ws : watches_)
        ws.prime(target.mem);

    uint64_t shadowCursor = shadowBase_;
    for (size_t i = 0; i < watches_.size(); ++i) {
        const WatchSpec &w = watches_[i].spec();
        if (w.kind == WatchKind::Range) {
            Addr lo = alignDown(w.addr, 8);
            Addr hi = alignDown(w.addr + w.length - 1, 8);
            for (Addr q = lo; q <= hi; q += 8)
                target.mem.write(shadowCursor + (q - lo), 8,
                                 target.mem.read(q, 8));
            shadowCursor += alignUp(w.length, 8) + 16;
        } else {
            target.mem.write(rwsegBase_ + 8 * i, 8,
                             readLikeTarget(target.mem, w.addr, w.size));
        }
    }
}

DebugAction
RewriteBackend::onTrap(const MicroOp &op)
{
    ++seq_;
    int64_t code = op.inst.imm;
    if (code >= TrapBreakBase) {
        recordBreak(static_cast<int>(code - TrapBreakBase), op.pc,
                    seq_);
        return {TransitionKind::User};
    }
    for (size_t i = 0; i < watches_.size(); ++i) {
        auto ch = watches_[i].evaluate(target_->mem);
        if (ch && watches_[i].predicatePasses(ch->newValue))
            recordWatch(static_cast<int>(i), *ch, seq_, op.pc);
    }
    return {TransitionKind::User};
}

} // namespace dise
