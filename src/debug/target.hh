/**
 * @file
 * The debuggee: program image plus the machine it runs on (registers,
 * memory, DISE engine, simulated-OS output). Debugger backends attach
 * to a DebugTarget; the harness then runs it functionally or under the
 * timing model.
 */

#ifndef DISE_DEBUG_TARGET_HH
#define DISE_DEBUG_TARGET_HH

#include <memory>

#include "asm/program.hh"
#include "cpu/arch_state.hh"
#include "cpu/inst_stream.hh"
#include "cpu/loader.hh"
#include "dise/engine.hh"
#include "jit/trace_cache.hh"
#include "mem/mainmem.hh"

namespace dise {

class DebugTarget
{
  public:
    explicit DebugTarget(Program prog)
        : program(std::move(prog)),
          jit_(std::make_unique<TraceCache>(mem))
    {
    }

    /** The target's trace cache (hot-path JIT over this memory). */
    TraceCache *jit() { return jit_.get(); }

    /** Load the (possibly backend-modified) image into memory. */
    void
    load()
    {
        loadProgram(mem, arch, program);
        loaded_ = true;
    }

    bool loaded() const { return loaded_; }

    Addr symbol(const std::string &name) const
    {
        return program.symbol(name);
    }

    ArchState arch;
    MainMemory mem;
    DiseEngine engine;
    OutputSink sink;
    Program program;

  private:
    bool loaded_ = false;
    /** Declared after mem (registers as a CodeWatcher with it). */
    std::unique_ptr<TraceCache> jit_;
};

} // namespace dise

#endif // DISE_DEBUG_TARGET_HH
