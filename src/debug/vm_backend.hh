/**
 * @file
 * Virtual-memory backend: mprotect()-style page protection. The
 * debugger write-protects every page holding watched data; any store
 * into such a page traps to the debugger, which re-evaluates the
 * watched expressions. Page granularity produces spurious address
 * transitions whenever unwatched data sharing a page is written — the
 * paper's key weakness for this technique. Indirect expressions are
 * unsupported (the page to protect cannot be statically determined),
 * matching the missing VM/INDIRECT bars in Figures 3 and 4.
 */

#ifndef DISE_DEBUG_VM_BACKEND_HH
#define DISE_DEBUG_VM_BACKEND_HH

#include "debug/backend.hh"

namespace dise {

class VmBackend : public DebugBackend
{
  public:
    std::string name() const override { return "virtual-memory"; }

    bool install(DebugTarget &target, const std::vector<WatchSpec> &watches,
                 const std::vector<BreakSpec> &breaks) override;

    void prime(DebugTarget &target) override;

    StreamEnv streamEnv(DebugTarget &target) override;

    DebugAction onStore(const MicroOp &op) override;

    size_t protectedPages() const { return pages_.size(); }

  private:
    DebugTarget *target_ = nullptr;
    std::vector<Addr> pages_; ///< page base addresses we protected
};

} // namespace dise

#endif // DISE_DEBUG_VM_BACKEND_HH
