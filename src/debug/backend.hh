/**
 * @file
 * The debugger-backend interface: one implementation per watchpoint
 * technique the paper evaluates (single-stepping, virtual memory,
 * hardware registers, static binary rewriting, and DISE).
 *
 * A backend (1) installs its machinery into the target before it is
 * loaded, and (2) acts as the DebugMonitor observing the run in
 * functional order to classify debugger transitions and record
 * user-visible events. The common host-side state (shadow values,
 * event lists, and the event sequence counter) lives here, which also
 * lets the checkpoint subsystem snapshot and restore any backend's
 * dynamic state uniformly (BackendSnapshot).
 */

#ifndef DISE_DEBUG_BACKEND_HH
#define DISE_DEBUG_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/microop.hh"
#include "debug/target.hh"
#include "debug/watch.hh"
#include "tools/toolset.hh"

namespace dise {

/** Breakpoint request. */
struct BreakSpec
{
    Addr pc = 0;
    std::string name;
    /** Conditional: only invoke the user when mem[condAddr] == const. */
    bool conditional = false;
    Addr condAddr = 0;
    unsigned condSize = 8;
    uint64_t condConst = 0;
};

/**
 * Everything host-side a backend mutates while the target runs:
 * watchpoint shadow state, the recorded event lists, and the event
 * sequence counter. A checkpoint captures this alongside the target's
 * architectural state so that deterministic re-execution from the
 * checkpoint re-derives the exact same event stream.
 */
struct BackendSnapshot
{
    size_t watchEvents = 0;
    size_t breakEvents = 0;
    size_t protectionEvents = 0;
    uint64_t seq = 0;
    std::vector<WatchStateSnap> watches;
    /** Serialized debug-tool state, one blob per enabled tool. */
    tools::ToolSet::Blobs tools;
};

class DebugBackend : public DebugMonitor
{
  public:
    ~DebugBackend() override = default;

    virtual std::string name() const = 0;

    /**
     * Install watchpoints/breakpoints. Called once, before
     * target.load(). May modify target.program (rewriting), the engine
     * (DISE), page protections, etc. Returns false if the technique
     * cannot implement the request (the paper's "no experiment" cases,
     * e.g. INDIRECT under virtual memory).
     */
    virtual bool install(DebugTarget &target,
                         const std::vector<WatchSpec> &watches,
                         const std::vector<BreakSpec> &breaks) = 0;

    /** Called after target.load() for memory-dependent setup. */
    virtual void prime(DebugTarget &target) {}

    /** Stream hooks this backend needs. */
    virtual StreamEnv
    streamEnv(DebugTarget &target)
    {
        StreamEnv env;
        env.monitor = this;
        env.sink = &target.sink;
        tools_.bind(&target);
        env.observer = &tools_;
        env.jit = target.jit();
        env.events = &eventsRecorded_;
        return env;
    }

    /**
     * Whether enabled debug tools should install their DISE production
     * sets into the target's engine (DISE backend only; the others run
     * the same host-side detection without in-pipeline payloads).
     */
    virtual bool usesDiseProductions() const { return false; }

    /** The debug tools enabled on this backend. */
    tools::ToolSet &tools() { return tools_; }
    const tools::ToolSet &tools() const { return tools_; }

    const std::vector<WatchEvent> &watchEvents() const
    {
        return watchEvents_;
    }
    const std::vector<BreakEvent> &breakEvents() const
    {
        return breakEvents_;
    }
    const std::vector<ProtectionEvent> &protectionEvents() const
    {
        return protectionEvents_;
    }

    size_t
    totalEvents() const
    {
        return watchEvents_.size() + breakEvents_.size() +
               protectionEvents_.size();
    }

    /**
     * Monotonic count of events ever recorded (never decremented, not
     * even when restoreHost() rolls the event lists back). Record-mode
     * pollers compare it against their last-seen value and skip the
     * per-µop event-list scans entirely while it is unchanged —
     * batching detection behind one integer compare.
     */
    uint64_t eventsRecorded() const { return eventsRecorded_; }

    /** @name Checkpoint support (time-travel debugging) */
    ///@{
    BackendSnapshot
    snapshotHost() const
    {
        BackendSnapshot s;
        s.watchEvents = watchEvents_.size();
        s.breakEvents = breakEvents_.size();
        s.protectionEvents = protectionEvents_.size();
        s.seq = seq_;
        s.watches.reserve(watches_.size());
        for (const auto &w : watches_)
            s.watches.push_back(w.save());
        s.tools = tools_.snapshot();
        return s;
    }

    /**
     * Seed the event lists with an already-recorded history prefix (an
     * interval-replay replica adopting the live session's events up to
     * its starting checkpoint, so per-kind indices — and state digests
     * — line up with the original). Does not advance eventsRecorded():
     * these are adopted, not detected.
     */
    void
    adoptEvents(const std::vector<WatchEvent> &watches,
                const std::vector<BreakEvent> &breaks,
                const std::vector<ProtectionEvent> &protections)
    {
        watchEvents_ = watches;
        breakEvents_ = breaks;
        protectionEvents_ = protections;
    }

    void
    restoreHost(const BackendSnapshot &s)
    {
        watchEvents_.resize(s.watchEvents);
        breakEvents_.resize(s.breakEvents);
        protectionEvents_.resize(s.protectionEvents);
        seq_ = s.seq;
        for (size_t i = 0; i < watches_.size() && i < s.watches.size();
             ++i)
            watches_[i].restore(s.watches[i]);
        tools_.restore(s.tools);
    }
    ///@}

  protected:
    void
    recordWatch(int idx, const WatchChange &ch, uint64_t seq,
                Addr pc = 0)
    {
        watchEvents_.push_back({idx, ch.addr, ch.oldValue, ch.newValue,
                                pc, seq});
        ++eventsRecorded_;
    }

    void
    recordBreak(int idx, Addr pc, uint64_t seq)
    {
        breakEvents_.push_back({idx, pc, seq});
        ++eventsRecorded_;
    }

    void
    recordProtection(Addr pc, Addr addr)
    {
        protectionEvents_.push_back({pc, addr});
        ++eventsRecorded_;
    }

    std::vector<WatchEvent> watchEvents_;
    std::vector<BreakEvent> breakEvents_;
    std::vector<ProtectionEvent> protectionEvents_;

    // Host-side per-watchpoint shadow state and the event sequence
    // counter, shared by every backend implementation.
    std::vector<WatchState> watches_;
    std::vector<BreakSpec> breaks_;
    uint64_t seq_ = 0;
    uint64_t eventsRecorded_ = 0;
    tools::ToolSet tools_;
};

} // namespace dise

#endif // DISE_DEBUG_BACKEND_HH
