/**
 * @file
 * The debugger-backend interface: one implementation per watchpoint
 * technique the paper evaluates (single-stepping, virtual memory,
 * hardware registers, static binary rewriting, and DISE).
 *
 * A backend (1) installs its machinery into the target before it is
 * loaded, and (2) acts as the DebugMonitor observing the run in
 * functional order to classify debugger transitions and record
 * user-visible events. The common host-side state (shadow values and
 * event lists) lives here.
 */

#ifndef DISE_DEBUG_BACKEND_HH
#define DISE_DEBUG_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/microop.hh"
#include "debug/target.hh"
#include "debug/watch.hh"

namespace dise {

/** Breakpoint request. */
struct BreakSpec
{
    Addr pc = 0;
    std::string name;
    /** Conditional: only invoke the user when mem[condAddr] == const. */
    bool conditional = false;
    Addr condAddr = 0;
    unsigned condSize = 8;
    uint64_t condConst = 0;
};

class DebugBackend : public DebugMonitor
{
  public:
    ~DebugBackend() override = default;

    virtual std::string name() const = 0;

    /**
     * Install watchpoints/breakpoints. Called once, before
     * target.load(). May modify target.program (rewriting), the engine
     * (DISE), page protections, etc. Returns false if the technique
     * cannot implement the request (the paper's "no experiment" cases,
     * e.g. INDIRECT under virtual memory).
     */
    virtual bool install(DebugTarget &target,
                         const std::vector<WatchSpec> &watches,
                         const std::vector<BreakSpec> &breaks) = 0;

    /** Called after target.load() for memory-dependent setup. */
    virtual void prime(DebugTarget &target) {}

    /** Stream hooks this backend needs. */
    virtual StreamEnv
    streamEnv(DebugTarget &target)
    {
        StreamEnv env;
        env.monitor = this;
        env.sink = &target.sink;
        return env;
    }

    const std::vector<WatchEvent> &watchEvents() const
    {
        return watchEvents_;
    }
    const std::vector<BreakEvent> &breakEvents() const
    {
        return breakEvents_;
    }
    const std::vector<ProtectionEvent> &protectionEvents() const
    {
        return protectionEvents_;
    }

  protected:
    void
    recordWatch(int idx, const WatchChange &ch, uint64_t seq,
                Addr pc = 0)
    {
        watchEvents_.push_back({idx, ch.addr, ch.oldValue, ch.newValue,
                                pc, seq});
    }

    std::vector<WatchEvent> watchEvents_;
    std::vector<BreakEvent> breakEvents_;
    std::vector<ProtectionEvent> protectionEvents_;
};

} // namespace dise

#endif // DISE_DEBUG_BACKEND_HH
