/**
 * @file
 * Watchpoint specifications, debugger events, and the host-side
 * expression-evaluation state shared by all backends.
 *
 * The paper's watchpoint taxonomy (Section 5): scalar variables
 * (HOT/WARM/COLD), an indirect expression *p, and a non-scalar RANGE
 * (structure or array). A watchpoint may carry a conditional predicate
 * comparing the watched expression's value against a constant.
 */

#ifndef DISE_DEBUG_WATCH_HH
#define DISE_DEBUG_WATCH_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mainmem.hh"

namespace dise {

/** What kind of expression is watched. */
enum class WatchKind : uint8_t {
    Scalar,   ///< a fixed-address variable
    Indirect, ///< *p: the datum the pointer at ptrAddr points to
    Range,    ///< a contiguous region (structure / array)
};

/** One watchpoint request. */
struct WatchSpec
{
    WatchKind kind = WatchKind::Scalar;
    std::string name;

    /** Scalar: variable address. Indirect: the pointer's address.
     *  Range: region base. */
    Addr addr = 0;
    /** Element size in bytes (scalar/indirect). */
    unsigned size = 8;
    /** Region length in bytes (range). */
    uint64_t length = 0;

    /** Conditional: only invoke the user when value == predConst. */
    bool conditional = false;
    uint64_t predConst = 0;

    static WatchSpec
    scalar(std::string name, Addr addr, unsigned size = 8)
    {
        WatchSpec w;
        w.kind = WatchKind::Scalar;
        w.name = std::move(name);
        w.addr = addr;
        w.size = size;
        return w;
    }

    static WatchSpec
    indirect(std::string name, Addr ptrAddr, unsigned size = 8)
    {
        WatchSpec w;
        w.kind = WatchKind::Indirect;
        w.name = std::move(name);
        w.addr = ptrAddr;
        w.size = size;
        return w;
    }

    static WatchSpec
    range(std::string name, Addr base, uint64_t length)
    {
        WatchSpec w;
        w.kind = WatchKind::Range;
        w.name = std::move(name);
        w.addr = base;
        w.length = length;
        return w;
    }

    WatchSpec
    withCondition(uint64_t constant) const
    {
        WatchSpec w = *this;
        w.conditional = true;
        w.predConst = constant;
        return w;
    }
};

/** A user-visible watchpoint hit. */
struct WatchEvent
{
    int wpIndex = -1;
    Addr addr = 0;        ///< changed location
    uint64_t oldValue = 0;
    uint64_t newValue = 0;
    Addr pc = 0;          ///< where the change was detected
    uint64_t seq = 0;     ///< detection order
};

/** A user-visible breakpoint hit. */
struct BreakEvent
{
    int bpIndex = -1;
    Addr pc = 0;
    uint64_t seq = 0;
};

/** A protection violation caught by the Fig. 2f production. */
struct ProtectionEvent
{
    Addr pc = 0;
    Addr addr = 0;
};

/** A detected change of a watched expression. */
struct WatchChange
{
    Addr addr = 0;
    uint64_t oldValue = 0;
    uint64_t newValue = 0;
};

/**
 * The mutable part of a WatchState, captured by checkpoints: what the
 * debugger process remembers between transitions and must roll back
 * when execution travels backward in time.
 */
struct WatchStateSnap
{
    uint64_t prevValue = 0;
    Addr curTarget = 0;
    std::vector<uint8_t> shadow;
};

/**
 * Host-side shadow state for one watchpoint: what the debugger process
 * would remember between transitions. Used directly by the
 * single-stepping / virtual-memory / hardware-register backends, and by
 * the DISE backend to reconstruct events at (non-spurious) traps.
 */
class WatchState
{
  public:
    explicit WatchState(const WatchSpec &spec);

    /** Snapshot the current value from memory (at install time). */
    void prime(const MainMemory &mem);

    /**
     * Re-evaluate the expression against memory; if its value changed
     * since the last evaluation, update the shadow and report how.
     */
    std::optional<WatchChange> evaluate(const MainMemory &mem);

    /** Would a write of @p bytes at @p addr touch watched storage? */
    bool overlaps(Addr addr, unsigned bytes) const;

    /** All statically-known addresses this watchpoint monitors
     *  (empty for indirect targets beyond the pointer cell itself). */
    std::vector<std::pair<Addr, uint64_t>> staticRegions() const;

    /** Predicate test per the spec. */
    bool
    predicatePasses(uint64_t newValue) const
    {
        return !spec_.conditional || newValue == spec_.predConst;
    }

    const WatchSpec &spec() const { return spec_; }
    /** Current pointer target (indirect watchpoints). */
    Addr currentTarget() const { return curTarget_; }
    uint64_t shadowValue() const { return prevValue_; }

    /** @name Checkpoint support */
    ///@{
    WatchStateSnap save() const { return {prevValue_, curTarget_, shadow_}; }
    void
    restore(const WatchStateSnap &snap)
    {
        prevValue_ = snap.prevValue;
        curTarget_ = snap.curTarget;
        shadow_ = snap.shadow;
    }
    ///@}

  private:
    WatchSpec spec_;
    uint64_t prevValue_ = 0; ///< scalar/indirect expression value
    Addr curTarget_ = 0;     ///< indirect: last seen pointer value
    std::vector<uint8_t> shadow_; ///< range contents
};

} // namespace dise

#endif // DISE_DEBUG_WATCH_HH
