#include "debug/hwreg_backend.hh"

#include "common/bitutils.hh"

namespace dise {

bool
HwRegBackend::install(DebugTarget &target,
                      const std::vector<WatchSpec> &watches,
                      const std::vector<BreakSpec> &breaks)
{
    target_ = &target;
    if (!breaks.empty())
        return false;
    for (const auto &w : watches) {
        // Registers watch scalars; debuggers fall back to other
        // techniques for indirect/non-scalar data (paper Section 5.1).
        if (w.kind != WatchKind::Scalar)
            return false;
        watches_.emplace_back(w);
    }

    hwCount_ = std::min<unsigned>(numRegs_, watches.size());
    for (unsigned i = 0; i < hwCount_; ++i)
        hwQuads_.push_back(alignDown(watches[i].addr, 8));

    // Overflow watchpoints use virtual-memory protection.
    for (size_t i = hwCount_; i < watches.size(); ++i) {
        const auto &w = watches[i];
        Addr lo = alignDown(w.addr, PageBytes);
        Addr hi = alignDown(w.addr + w.size - 1, PageBytes);
        for (Addr p = lo; p <= hi; p += PageBytes)
            pages_.push_back(p);
    }
    return true;
}

void
HwRegBackend::prime(DebugTarget &target)
{
    for (auto &w : watches_)
        w.prime(target.mem);
    for (Addr p : pages_)
        target.mem.protectPage(p);
}

StreamEnv
HwRegBackend::streamEnv(DebugTarget &target)
{
    StreamEnv env = DebugBackend::streamEnv(target);
    env.monitorStores = true;
    return env;
}

DebugAction
HwRegBackend::onStore(const MicroOp &op)
{
    Addr quad = alignDown(op.effAddr, 8);
    Addr quadEnd = alignDown(op.effAddr + op.memBytes - 1, 8);

    bool hwHit = false;
    for (Addr w : hwQuads_) {
        if (w == quad || w == quadEnd) {
            hwHit = true;
            break;
        }
    }
    bool vmHit =
        !pages_.empty() && (target_->mem.isWriteProtected(op.effAddr) ||
                            target_->mem.isWriteProtected(
                                op.effAddr + op.memBytes - 1));
    if (!hwHit && !vmHit)
        return {};

    ++seq_;
    bool anyOverlap = false;
    bool anyPredicateFail = false;
    bool anyUser = false;
    for (size_t i = 0; i < watches_.size(); ++i) {
        if (!watches_[i].overlaps(op.effAddr, op.memBytes))
            continue;
        anyOverlap = true;
        auto ch = watches_[i].evaluate(target_->mem);
        if (!ch)
            continue;
        if (watches_[i].predicatePasses(ch->newValue)) {
            recordWatch(static_cast<int>(i), *ch, seq_, op.pc);
            anyUser = true;
        } else {
            anyPredicateFail = true;
        }
    }

    if (anyUser)
        return {TransitionKind::User};
    if (anyPredicateFail)
        return {TransitionKind::SpuriousPredicate};
    if (anyOverlap)
        return {TransitionKind::SpuriousValue};
    // Partial-quad or same-page false positive.
    return {TransitionKind::SpuriousAddress};
}

} // namespace dise
