/**
 * @file
 * The DISE debugger backend — the paper's contribution.
 *
 * Watchpoints become productions that expand every store into a
 * replacement sequence testing the store address (or directly
 * re-evaluating the expression), calling a debugger-generated function
 * on a match, and trapping only when the user must actually be
 * invoked. All spurious transitions are pruned inside the application.
 *
 * Implemented machinery, mapped to the paper:
 *  - Figure 2a/2b: Evaluate-Expression replacement sequences, with and
 *    without the ctrap extension.
 *  - Figure 2c/2d: Match-Address + DISE (conditional) call to the
 *    debugger-generated function.
 *  - Figure 7's third variant: Match-Address-Value, fully inline.
 *  - Figure 2e: the generated handler (all registers callee-saved,
 *    DISE disabled inside, d_mfr/d_mtr for DISE-register access).
 *  - Figure 2f: dseg protection prologue on every store expansion.
 *  - Section 4.2 multi-watchpoint strategies: serial address match,
 *    range bounds check, bytewise and bitwise Bloom filters.
 *  - Section 4.2 pattern optimization: stack-store exclusion via a
 *    more-specific identity production.
 *  - Section 4.1/4.3 breakpoints: codeword or PC-pattern productions,
 *    with conditions compiled directly into the replacement sequence.
 */

#ifndef DISE_DEBUG_DISE_BACKEND_HH
#define DISE_DEBUG_DISE_BACKEND_HH

#include "debug/backend.hh"

namespace dise {

/** Replacement-sequence organization (Figure 7). */
enum class DiseVariant : uint8_t {
    MatchAddrEvalExpr, ///< address check inline, expression in handler
    EvalExpr,          ///< expression evaluation inline (scalars)
    MatchAddrValue,    ///< address+value match inline (same-size scalars)
};

/** Multi-watchpoint address-matching strategy (Section 4.2 / Fig. 6). */
enum class MultiMatch : uint8_t {
    Auto,
    Serial,
    RangeCheck,
    BloomByte,
    BloomBit,
};

struct DiseOptions
{
    DiseVariant variant = DiseVariant::MatchAddrEvalExpr;
    /** ctrap / d_ccall ISA support available (Figure 7 top vs bottom). */
    bool condCallTrap = true;
    MultiMatch strategy = MultiMatch::Auto;
    /** Guard the debugger's dseg with the Figure 2f production. */
    bool protectDebuggerData = false;
    /** Skip expanding stack stores via a more-specific pattern. */
    bool excludeStackStores = false;
    /** Trigger breakpoints by codeword instead of PC pattern. */
    bool breakpointsByCodeword = false;
};

/** Trap codes used by generated code. */
enum : int64_t {
    TrapWatchpoint = 1,
    TrapProtection = 0x80,
    TrapBreakBase = 0x100,
};

class DiseBackend : public DebugBackend
{
  public:
    explicit DiseBackend(DiseOptions opts = {}) : opts_(opts) {}

    std::string name() const override { return "dise"; }

    /** Debug tools install their production sets on this backend. */
    bool usesDiseProductions() const override { return true; }

    bool install(DebugTarget &target, const std::vector<WatchSpec> &watches,
                 const std::vector<BreakSpec> &breaks) override;

    void prime(DebugTarget &target) override;

    DebugAction onTrap(const MicroOp &op) override;

    /** Instructions in the main store replacement sequence (tests). */
    size_t replacementLength() const { return replacementLen_; }
    /** Generated handler size in instructions (tests). */
    size_t handlerInsts() const { return handlerInsts_; }
    /** Effective strategy after Auto resolution (tests). */
    MultiMatch strategy() const { return strategy_; }
    const DiseOptions &options() const { return opts_; }

    /** dseg layout constants (shared with tests). */
    static constexpr uint64_t SaveAreaOff = 0x000;
    static constexpr uint64_t EntriesOff = 0x040;
    static constexpr uint64_t EntryBytes = 32;
    static constexpr uint64_t EntAligned = 0;  ///< quad-aligned address
    static constexpr uint64_t EntReal = 8;     ///< true address
    static constexpr uint64_t EntPrev = 16;    ///< previous value
    static constexpr uint64_t EntPred = 24;    ///< predicate constant
    static constexpr uint64_t BloomBytes = 2048;

  private:
    struct HandlerPlan; // codegen context

    void resolveStrategy(const std::vector<WatchSpec> &watches);
    std::vector<TemplateInst> buildStoreReplacement();
    void buildHandler(DebugTarget &target);
    void installBreakpoints(DebugTarget &target);
    void primeDseg(DebugTarget &target);
    void bloomInsert(DebugTarget &target, Addr quadAddr);

    DiseOptions opts_;
    MultiMatch strategy_ = MultiMatch::Serial;
    DebugTarget *target_ = nullptr;

    Addr dsegBase_ = 0;
    uint64_t dsegSize_ = 0;
    unsigned protShift_ = 12; ///< dseg identified by addr >> protShift
    Addr handlerBase_ = 0;
    Addr bloomBase_ = 0;
    Addr shadowBase_ = 0; ///< range shadow copy in dseg
    size_t replacementLen_ = 0;
    size_t handlerInsts_ = 0;
};

} // namespace dise

#endif // DISE_DEBUG_DISE_BACKEND_HH
