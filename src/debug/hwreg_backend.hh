/**
 * @file
 * Hardware-watchpoint-register backend. Models the four quad-
 * granularity data-breakpoint registers of IA-32/IA-64: a store whose
 * quad-aligned address matches a register traps to the debugger.
 * Matching is free of address false positives except partial-quad
 * overlap, but silent stores still cause spurious value transitions,
 * and conditional predicates still cause spurious predicate
 * transitions — the effects Figures 3 and 4 measure.
 *
 * When more watchpoints are requested than registers exist, the
 * remainder falls back to virtual-memory page protection (the paper's
 * Figure 6 "Hardware/Virtual Memory" hybrid). Indirect and range
 * watchpoints are unsupported, matching the missing bars.
 */

#ifndef DISE_DEBUG_HWREG_BACKEND_HH
#define DISE_DEBUG_HWREG_BACKEND_HH

#include "debug/backend.hh"

namespace dise {

class HwRegBackend : public DebugBackend
{
  public:
    explicit HwRegBackend(unsigned numRegs = 4) : numRegs_(numRegs) {}

    std::string name() const override { return "hardware-registers"; }

    bool install(DebugTarget &target, const std::vector<WatchSpec> &watches,
                 const std::vector<BreakSpec> &breaks) override;

    void prime(DebugTarget &target) override;

    StreamEnv streamEnv(DebugTarget &target) override;

    DebugAction onStore(const MicroOp &op) override;

    unsigned hwAssigned() const { return hwCount_; }
    size_t vmPages() const { return pages_.size(); }

  private:
    DebugTarget *target_ = nullptr;
    unsigned numRegs_;
    unsigned hwCount_ = 0; ///< first hwCount_ watchpoints use registers
    std::vector<Addr> hwQuads_; ///< quad-aligned register contents
    std::vector<Addr> pages_;   ///< VM-fallback protected pages
};

} // namespace dise

#endif // DISE_DEBUG_HWREG_BACKEND_HH
