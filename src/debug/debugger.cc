#include "debug/debugger.hh"

#include "common/logging.hh"
#include "debug/hwreg_backend.hh"
#include "debug/rewrite_backend.hh"
#include "debug/singlestep_backend.hh"
#include "debug/vm_backend.hh"

namespace dise {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Dise: return "DISE";
      case BackendKind::SingleStep: return "Single-Stepping";
      case BackendKind::VirtualMemory: return "Virtual Memory";
      case BackendKind::HardwareReg: return "Hardware";
      case BackendKind::Rewrite: return "Binary Rewriting";
    }
    return "?";
}

Debugger::Debugger(DebugTarget &target, DebuggerOptions opts)
    : target_(target), opts_(opts)
{
    switch (opts_.backend) {
      case BackendKind::Dise:
        backend_ = std::make_unique<DiseBackend>(opts_.dise);
        break;
      case BackendKind::SingleStep:
        backend_ = std::make_unique<SingleStepBackend>();
        break;
      case BackendKind::VirtualMemory:
        backend_ = std::make_unique<VmBackend>();
        break;
      case BackendKind::HardwareReg:
        backend_ = std::make_unique<HwRegBackend>(opts_.hwRegs);
        break;
      case BackendKind::Rewrite:
        backend_ = std::make_unique<RewriteBackend>();
        break;
    }
}

Debugger::~Debugger() = default;

int
Debugger::watch(const WatchSpec &spec)
{
    DISE_ASSERT(!attached_, "watchpoints must be set before attach()");
    watches_.push_back(spec);
    return static_cast<int>(watches_.size()) - 1;
}

int
Debugger::breakAt(const BreakSpec &spec)
{
    DISE_ASSERT(!attached_, "breakpoints must be set before attach()");
    breaks_.push_back(spec);
    return static_cast<int>(breaks_.size()) - 1;
}

bool
Debugger::attach(const std::function<void(DebugTarget &)> &postLoad)
{
    DISE_ASSERT(!attached_, "already attached");
    if (!backend_->install(target_, watches_, breaks_))
        return false;
    target_.load();
    if (postLoad)
        postLoad(target_);
    backend_->prime(target_);
    attached_ = true;
    return true;
}

RunStats
Debugger::run(TimingConfig cfg, RunLimits limits)
{
    DISE_ASSERT(attached_, "attach() before run()");
    DISE_ASSERT(!tt_, "run() would advance the target behind the active "
                      "time-travel session's back; use the session");
    StreamEnv env = backend_->streamEnv(target_);
    TimingCpu cpu(target_.arch, target_.mem, &target_.engine, env, cfg);
    return cpu.run(limits);
}

FuncResult
Debugger::runFunctional(uint64_t maxAppInsts)
{
    DISE_ASSERT(attached_, "attach() before run()");
    DISE_ASSERT(!tt_, "runFunctional() would advance the target behind "
                      "the active time-travel session's back; use the "
                      "session");
    StreamEnv env = backend_->streamEnv(target_);
    FuncCpu cpu(target_.arch, target_.mem, &target_.engine, env);
    return cpu.run(maxAppInsts);
}

TimeTravel &
Debugger::timeTravel(TimeTravelConfig cfg)
{
    DISE_ASSERT(attached_, "attach() before timeTravel()");
    if (!tt_) {
        ttCfg_ = cfg;
        tt_ = std::make_unique<TimeTravel>(target_, *backend_, log_, cfg);
        return *tt_;
    }
    // Re-entry returns the existing session. Passing a different
    // explicit config here would be silently ignored — reject it.
    // (The default config is accepted so the convenience forwards and
    // plain timeTravel() lookups keep working.)
    TimeTravelConfig def{};
    bool isDefault = cfg.checkpointInterval == def.checkpointInterval &&
                     cfg.maxAppInsts == def.maxAppInsts;
    DISE_ASSERT(isDefault ||
                    (cfg.checkpointInterval == ttCfg_.checkpointInterval &&
                     cfg.maxAppInsts == ttCfg_.maxAppInsts),
                "timeTravel() config differs from the active session's");
    return *tt_;
}

const std::vector<WatchEvent> &
Debugger::watchEvents() const
{
    return backend_->watchEvents();
}

const std::vector<BreakEvent> &
Debugger::breakEvents() const
{
    return backend_->breakEvents();
}

const std::vector<ProtectionEvent> &
Debugger::protectionEvents() const
{
    return backend_->protectionEvents();
}

} // namespace dise
