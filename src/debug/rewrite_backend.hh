/**
 * @file
 * Static binary-rewriting backend, in the style of Wahbe et al. and
 * Kessler: every store in the program text is statically replaced by an
 * inlined check sequence (original store, register spills to the stack
 * red zone, address reconstruction, serial comparison against watched
 * addresses, and a conventional call to an out-of-line evaluation
 * routine), then the whole unit is re-assembled — branch retargeting
 * for free via the label-based IR, standing in for the "wholesale
 * re-compilation" the technique needs.
 *
 * Like DISE it prunes spurious transitions inside the application; its
 * costs are static-code bloat (instruction-cache pressure, Figure 5)
 * and the intrusiveness the paper's Section 4 catalogs (register
 * scavenging, red-zone stack use, code layout perturbation).
 */

#ifndef DISE_DEBUG_REWRITE_BACKEND_HH
#define DISE_DEBUG_REWRITE_BACKEND_HH

#include "debug/backend.hh"

namespace dise {

class RewriteBackend : public DebugBackend
{
  public:
    std::string name() const override { return "binary-rewriting"; }

    bool install(DebugTarget &target, const std::vector<WatchSpec> &watches,
                 const std::vector<BreakSpec> &breaks) override;

    void prime(DebugTarget &target) override;

    DebugAction onTrap(const MicroOp &op) override;

    /** Static text growth factor after rewriting (tests / Fig. 5). */
    double bloatFactor() const { return bloatFactor_; }

  private:
    void emitStoreStub(std::vector<AsmItem> &items, const Inst &store,
                       uint64_t stubId);
    void emitHandler(std::vector<AsmItem> &items);

    DebugTarget *target_ = nullptr;
    Addr rwsegBase_ = 0;
    Addr shadowBase_ = 0;
    double bloatFactor_ = 1.0;
};

} // namespace dise

#endif // DISE_DEBUG_REWRITE_BACKEND_HH
