#include "rsp/packet.hh"

#include <cstdio>

#include "common/hex.hh"

namespace dise::rsp {

namespace {

constexpr char Esc = '}';
constexpr uint8_t EscXor = 0x20;

bool
needsEscape(char c)
{
    return c == '$' || c == '#' || c == Esc || c == '*';
}

/** Repeat-count characters the sender must not produce ('$', '#',
 *  '+', '-' would confuse framing and acks). */
bool
forbiddenCount(char n)
{
    return n == '$' || n == '#' || n == '+' || n == '-';
}

} // namespace

uint8_t
checksum(const std::string &data)
{
    unsigned sum = 0;
    for (char c : data)
        sum += static_cast<unsigned char>(c);
    return static_cast<uint8_t>(sum & 0xff);
}

std::string
escapePayload(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (needsEscape(c)) {
            out += Esc;
            out += static_cast<char>(static_cast<uint8_t>(c) ^ EscXor);
        } else {
            out += c;
        }
    }
    return out;
}

std::string
runLengthEncode(const std::string &payload)
{
    std::string out;
    out.reserve(payload.size());
    size_t i = 0;
    while (i < payload.size()) {
        char c = payload[i];
        // An escape pair is a unit; never fold it into a run.
        if (c == Esc) {
            out += c;
            if (i + 1 < payload.size())
                out += payload[i + 1];
            i += 2;
            continue;
        }
        size_t run = 1;
        while (i + run < payload.size() && payload[i + run] == c)
            ++run;
        i += run;
        while (run > 0) {
            // `c '*' n` covers k characters: one literal plus (n - 29)
            // repeats, so n = k + 28; k caps at 98 (n = 126 = '~').
            size_t k = std::min<size_t>(run, 98);
            char n = static_cast<char>(k + 28);
            while (k >= 4 && forbiddenCount(n)) {
                --k;
                --n;
            }
            if (k < 4) {
                out.append(run, c); // too short to pay for the *n
                break;
            }
            out += c;
            out += '*';
            out += n;
            run -= k;
        }
    }
    return out;
}

std::string
frame(const std::string &raw, bool rle)
{
    std::string payload = escapePayload(raw);
    if (rle)
        payload = runLengthEncode(payload);
    char tail[8];
    std::snprintf(tail, sizeof tail, "#%02x", checksum(payload));
    return "$" + payload + tail;
}

std::string
notifyFrame(const std::string &raw)
{
    std::string payload = escapePayload(raw);
    char tail[8];
    std::snprintf(tail, sizeof tail, "#%02x", checksum(payload));
    return "%" + payload + tail;
}

bool
decodeFrame(const std::string &wire, std::string &payload)
{
    payload.clear();
    if (wire.size() < 4 || wire.front() != '$')
        return false;
    if (wire[wire.size() - 3] != '#')
        return false;
    int hi = hexNibble(wire[wire.size() - 2]);
    int lo = hexNibble(wire[wire.size() - 1]);
    if (hi < 0 || lo < 0)
        return false;
    std::string body = wire.substr(1, wire.size() - 4);
    if (body.find('#') != std::string::npos ||
        body.find('$') != std::string::npos)
        return false;
    if (checksum(body) != static_cast<uint8_t>(hi * 16 + lo))
        return false;

    for (size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == Esc) {
            if (i + 1 >= body.size())
                return false; // truncated escape
            payload += static_cast<char>(
                static_cast<uint8_t>(body[++i]) ^ EscXor);
        } else if (c == '*') {
            if (payload.empty())
                return false; // nothing to repeat
            char n = body.size() > i + 1 ? body[++i] : '\0';
            if (static_cast<unsigned char>(n) < 29 + 3)
                return false; // repeat below the legal minimum
            size_t count = static_cast<unsigned char>(n) - 29;
            if (payload.size() + count > PacketDecoder::MaxFrame)
                return false; // decompression bomb
            payload.append(count, payload.back());
        } else {
            payload += c;
        }
    }
    return true;
}

void
PacketDecoder::feed(const char *data, size_t len)
{
    buf_.append(data, len);
}

bool
PacketDecoder::next(ItemKind &kind, std::string &payload)
{
    for (;;) {
        // Skip stray bytes to the next item start.
        size_t start = 0;
        while (start < buf_.size() && buf_[start] != '$' &&
               buf_[start] != '+' && buf_[start] != '-' &&
               buf_[start] != '\x03')
            ++start;
        strayBytes_ += start;
        buf_.erase(0, start);
        if (buf_.empty())
            return false;

        char c = buf_[0];
        if (c == '+' || c == '-' || c == '\x03') {
            buf_.erase(0, 1);
            kind = c == '+' ? ItemKind::Ack
                   : c == '-' ? ItemKind::Nak
                              : ItemKind::Break;
            payload.clear();
            return true;
        }

        // A '$' frame: wait for "#xx".
        size_t hash = buf_.find('#');
        if (hash == std::string::npos) {
            if (buf_.size() > MaxFrame) {
                ++badFrames_;
                buf_.erase(0, 1); // resync past the bogus '$'
                continue;
            }
            return false; // incomplete
        }
        if (hash + 2 >= buf_.size())
            return false; // checksum digits still in flight
        std::string wire = buf_.substr(0, hash + 3);
        buf_.erase(0, hash + 3);
        if (decodeFrame(wire, payload)) {
            kind = ItemKind::Packet;
            return true;
        }
        ++badFrames_;
        // Malformed frame dropped; scan on for the next item.
    }
}

std::string
hexLe(uint64_t v, unsigned bytes)
{
    std::string out;
    for (unsigned i = 0; i < bytes; ++i)
        out += hexByte(static_cast<uint8_t>(v >> (8 * i)));
    return out;
}

bool
parseHexLe(const std::string &hex, uint64_t &v)
{
    if (hex.empty() || hex.size() % 2 || hex.size() > 16)
        return false;
    v = 0;
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]), lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        v |= static_cast<uint64_t>(hi * 16 + lo) << (4 * i);
    }
    return true;
}

bool
parseHexNum(const std::string &hex, uint64_t &v)
{
    if (hex.empty() || hex.size() > 16)
        return false;
    v = 0;
    for (char c : hex) {
        int n = hexNibble(c);
        if (n < 0)
            return false;
        v = (v << 4) | static_cast<uint64_t>(n);
    }
    return true;
}

std::string
toHex(const std::vector<uint8_t> &bytes)
{
    return bytesToHex(bytes);
}

bool
fromHex(const std::string &hex, std::vector<uint8_t> &bytes)
{
    return hexToBytes(hex, bytes);
}

} // namespace dise::rsp
