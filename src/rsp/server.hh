/**
 * @file
 * A GDB Remote Serial Protocol stub over a DebugSession.
 *
 * Implements the core packet set a stock gdb needs to drive any of the
 * five watchpoint backends over TCP — `qSupported`, `?`, `g`/`G`,
 * `p`/`P`, `m`/`M`, `Z`/`z`, `c`/`s`, `vCont`/`vCont?` — plus the
 * reverse-execution packets `bc`/`bs`, which map straight onto the
 * time-travel session's reverseContinue()/reverseStep(), a minimal
 * `qXfer:features:read` target description (so gdb stops guessing
 * register layouts), and — when the multi-session server provides an
 * async execution hook — non-stop mode: `QNonStop:1` makes execution
 * verbs reply OK immediately, run as preemptible scheduler jobs, and
 * report their landing via server-initiated `%Stop` notifications
 * (`vStopped` acknowledges; a Ctrl-C interrupt cancels the job at a
 * slice boundary and lands as `%Stop:T02`). The protocol work is transport-free
 * (RspConnection::handlePacket() maps one decoded payload to one reply
 * payload), so tests drive the full command set in-process;
 * RspConnection::serve() adds the TCP framing, ack handling, and
 * retransmit on NAK over any connected socket.
 *
 * Two layers:
 *  - RspConnection: one client's protocol state (Z-packet maps, last
 *    stop) over one DebugSession. Execution verbs go through an
 *    optional ExecFn hook, which the multi-session server
 *    (src/server/) uses to route `c`/`s`/`bc`/`bs` onto its job scheduler
 *    so many sessions share a bounded worker pool.
 *  - RspServer: the classic single-session listener (bind, accept one
 *    client, serve) used by the smoke tools and tests.
 *
 * Session mapping notes:
 *  - `Z2`/`Z4` (write/access watchpoint) and `Z0`/`Z1` (breakpoints)
 *    register specs on the session; the machinery installs at the
 *    first resume, and a `Z` after the target ran rebuilds + replays
 *    (DebugSession::setWatch), so post-attach insertion just works.
 *    Re-inserting an identical spec re-arms it and `z` mutes it,
 *    which matches gdb's remove/insert cycle around every continue.
 *  - A watchpoint stop replies `T05watch:<addr>;` with the trapped
 *    data address and the PC as register 0x20, so the client sees the
 *    identical stop location the in-process session reports.
 *  - `bc` from the beginning of history replies
 *    `T05replaylog:begin;`, gdb's "end of replay log" notation.
 */

#ifndef DISE_RSP_SERVER_HH
#define DISE_RSP_SERVER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rsp/packet.hh"
#include "session/debug_session.hh"

namespace dise::rsp {

/** One RSP client's protocol state over one DebugSession. */
class RspConnection
{
  public:
    /**
     * Execution hook: run @p kind (Cont / Stepi / ReverseContinue /
     * ReverseStep) for @p count instructions, filling @p out. Returns
     * false (with @p err) when the session cannot run — e.g. it was
     * destroyed mid-request. When empty, verbs execute directly on
     * the session in the calling thread.
     */
    using ExecFn = std::function<bool(RequestKind kind, uint64_t count,
                                      StopInfo &out, std::string *err)>;

    /**
     * Async completion of a non-stop execution verb: @p interrupted
     * marks a job stopped between slices by an interrupt (gdb Ctrl-C
     * → `%Stop:T02`). Runs on a scheduler worker thread.
     */
    using AsyncDoneFn = std::function<void(
        bool ok, bool interrupted, const StopInfo &stop,
        const std::string &err)>;
    /**
     * Start @p kind asynchronously; returns a canceller (empty on
     * failure) that interrupts the job at its next slice boundary.
     * Provided by the multi-session server (the job scheduler); when
     * absent, QNonStop is not advertised and execution stays
     * synchronous.
     */
    using AsyncExecFn = std::function<std::function<void()>(
        RequestKind kind, uint64_t count, AsyncDoneFn done)>;

    /**
     * Peek serialization: returns a held lock that excludes the
     * scheduler worker driving this session's job, so a read-only
     * packet (`g`/`p`/`m`, monitor tool verbs) lands exactly at a
     * slice boundary while a non-stop job is in flight. When empty,
     * busy peeks run unlocked (single-threaded embeddings).
     */
    using PeekLockFn = std::function<std::unique_lock<std::mutex>()>;

    explicit RspConnection(DebugSession &session, ExecFn exec = {},
                           bool verbose = false);

    /** Enable non-stop support (see AsyncExecFn). */
    void setAsyncExec(AsyncExecFn fn) { asyncExecFn_ = std::move(fn); }
    /** Serialize busy peeks against the job's slices (see PeekLockFn). */
    void setPeekLock(PeekLockFn fn) { peekLockFn_ = std::move(fn); }

    /**
     * The transport-free core: map one decoded packet payload to the
     * reply payload. Sets wantClose() on `D`/`k`.
     */
    std::string handlePacket(const std::string &payload);
    bool wantClose() const { return wantClose_; }

    /**
     * Serve a connected socket until detach/kill/EOF: framing, acks,
     * retransmit on NAK. Blocking; shut the fd down to unblock.
     */
    void serve(int fd);

    /** Packets served (tests/diagnostics). */
    uint64_t packetsHandled() const { return packetsHandled_; }

  private:
    /**
     * State shared between the serving thread and async-completion
     * callbacks (scheduler workers). Lives in a shared_ptr so a
     * callback landing after the connection object died only touches
     * this — and finds the socket closed.
     */
    struct AsyncState
    {
        std::mutex mu;
        int fd = -1;       ///< valid while open
        bool open = false; ///< serve() is inside its socket loop
        bool running = false; ///< a non-stop job is in flight
        bool havePending = false;
        std::string pendingReply; ///< stop-reply payload for vStopped
        std::function<void()> cancel;

        /** Frame and send a `%payload#xx` notification (no-op once
         *  the socket closed). */
        bool notify(const std::string &payload);
    };

    bool exec(RequestKind kind, uint64_t count, StopInfo &out,
              std::string *err);
    /** Start a non-stop job for @p kind; returns the immediate reply
     *  ("OK", or an error). */
    std::string execAsync(RequestKind kind, uint64_t count);
    std::string stopReply(const StopInfo &stop);
    /** Payload-only builder, safe from any thread. */
    static std::string buildStopReply(DebugSession &session,
                                      const StopInfo &stop,
                                      bool interrupted);
    std::string handleQuery(const std::string &payload);
    std::string handleVPacket(const std::string &payload);
    std::string handleInsert(const std::string &payload, bool insert);
    std::string handleReadMem(const std::string &payload);
    std::string handleWriteMem(const std::string &payload);
    std::string handleReadRegs();
    std::string handleWriteRegs(const std::string &payload);
    /** The target description served via qXfer:features:read. */
    static const std::string &targetXml();

    DebugSession &session_;
    ExecFn execFn_;
    AsyncExecFn asyncExecFn_;
    PeekLockFn peekLockFn_;
    bool verbose_ = false;
    bool wantClose_ = false;
    bool nonStop_ = false;
    uint64_t packetsHandled_ = 0;
    std::shared_ptr<AsyncState> async_;

    /** Z-packet spec → session watch/break index (for z lookups). */
    std::map<std::string, int> zWatches_;
    std::map<std::string, int> zBreaks_;

    /** Last stop, replayed by `?`. */
    bool haveStop_ = false;
    StopInfo lastStop_{};
};

struct RspServerOptions
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
    /** Log every packet exchange to stderr. */
    bool verbose = false;
};

/** The single-session listener: one port, one target, one client at a
 *  time. The multi-session daemon lives in src/server/. */
class RspServer
{
  public:
    RspServer(DebugSession &session, RspServerOptions opts = {});
    ~RspServer();

    RspServer(const RspServer &) = delete;
    RspServer &operator=(const RspServer &) = delete;

    /** @name TCP transport */
    ///@{
    /** Bind + listen on 127.0.0.1. Returns false on socket errors. */
    bool start();
    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }
    /**
     * Accept one client and serve it until detach/kill/EOF. Blocking;
     * call from a dedicated thread when the client lives in-process.
     */
    void serveOne();
    /** Close the listening socket (unblocks a pending accept). */
    void stop();
    ///@}

    /** @name Transport-free forwards (tests) */
    ///@{
    std::string
    handlePacket(const std::string &payload)
    {
        return conn_.handlePacket(payload);
    }
    bool wantClose() const { return conn_.wantClose(); }
    uint64_t packetsHandled() const { return conn_.packetsHandled(); }
    ///@}

  private:
    RspConnection conn_;
    RspServerOptions opts_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
};

} // namespace dise::rsp

#endif // DISE_RSP_SERVER_HH
