/**
 * @file
 * A GDB Remote Serial Protocol stub over a DebugSession.
 *
 * Implements the core packet set a stock gdb needs to drive any of the
 * five watchpoint backends over TCP — `qSupported`, `?`, `g`/`G`,
 * `p`/`P`, `m`/`M`, `Z`/`z`, `c`/`s` — plus the reverse-execution
 * packets `bc`/`bs`, which map straight onto the time-travel session's
 * reverseContinue()/reverseStep(). The protocol work is transport-free
 * (handlePacket() maps one decoded payload to one reply payload), so
 * tests drive the full command set in-process; serve() adds the
 * loopback TCP framing, ack handling, and retransmit on NAK.
 *
 * Session mapping notes:
 *  - `Z2`/`Z4` (write/access watchpoint) and `Z0`/`Z1` (breakpoints)
 *    register specs on the session; the machinery installs at the
 *    first resume. Re-inserting an identical spec re-arms it and `z`
 *    mutes it, which matches gdb's remove/insert cycle around every
 *    continue.
 *  - A watchpoint stop replies `T05watch:<addr>;` with the trapped
 *    data address and the PC as register 0x20, so the client sees the
 *    identical stop location the in-process session reports.
 *  - `bc` from the beginning of history replies
 *    `T05replaylog:begin;`, gdb's "end of replay log" notation.
 */

#ifndef DISE_RSP_SERVER_HH
#define DISE_RSP_SERVER_HH

#include <cstdint>
#include <map>
#include <string>

#include "rsp/packet.hh"
#include "session/debug_session.hh"

namespace dise::rsp {

struct RspServerOptions
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
    /** Log every packet exchange to stderr. */
    bool verbose = false;
};

class RspServer
{
  public:
    RspServer(DebugSession &session, RspServerOptions opts = {});
    ~RspServer();

    RspServer(const RspServer &) = delete;
    RspServer &operator=(const RspServer &) = delete;

    /** @name TCP transport */
    ///@{
    /** Bind + listen on 127.0.0.1. Returns false on socket errors. */
    bool start();
    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }
    /**
     * Accept one client and serve it until detach/kill/EOF. Blocking;
     * call from a dedicated thread when the client lives in-process.
     */
    void serveOne();
    /** Close the listening socket (unblocks a pending accept). */
    void stop();
    ///@}

    /**
     * The transport-free core: map one decoded packet payload to the
     * reply payload. Sets wantClose() on `D`/`k`.
     */
    std::string handlePacket(const std::string &payload);
    bool wantClose() const { return wantClose_; }

    /** Packets served (tests/diagnostics). */
    uint64_t packetsHandled() const { return packetsHandled_; }

  private:
    std::string stopReply(const StopInfo &stop);
    std::string handleQuery(const std::string &payload);
    std::string handleInsert(const std::string &payload, bool insert);
    std::string handleReadMem(const std::string &payload);
    std::string handleWriteMem(const std::string &payload);
    std::string handleReadRegs();
    std::string handleWriteRegs(const std::string &payload);

    DebugSession &session_;
    RspServerOptions opts_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    bool wantClose_ = false;
    uint64_t packetsHandled_ = 0;

    /** Z-packet spec → session watch/break index (for z lookups). */
    std::map<std::string, int> zWatches_;
    std::map<std::string, int> zBreaks_;

    /** Last stop, replayed by `?`. */
    bool haveStop_ = false;
    StopInfo lastStop_{};
};

} // namespace dise::rsp

#endif // DISE_RSP_SERVER_HH
