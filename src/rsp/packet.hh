/**
 * @file
 * GDB Remote Serial Protocol packet codec.
 *
 * Frames are `$<payload>#<2-hex-digit checksum>` where the checksum is
 * the modulo-256 sum of the payload bytes as transmitted. Payloads use
 * two in-band encodings:
 *
 *  - escaping: 0x7d ('}') prefixes a byte XORed with 0x20, used for
 *    '$', '#', '}' and '*' so they can appear in binary payloads;
 *  - run-length encoding: `X '*' n` repeats X a further (n - 29)
 *    times, n a printable character that is not '$', '#', '+' or '-'.
 *
 * The decoder is incremental (feed() bytes as they arrive from a
 * socket, pop complete items with next()) and treats the input as
 * hostile: bad checksums, truncated escapes, oversized frames and
 * stray bytes are counted and dropped, never asserted on.
 */

#ifndef DISE_RSP_PACKET_HH
#define DISE_RSP_PACKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/hex.hh"

namespace dise::rsp {

/** Modulo-256 sum of the bytes as they appear on the wire. */
uint8_t checksum(const std::string &data);

/** Escape a raw payload for transmission ('$', '#', '}', '*'). */
std::string escapePayload(const std::string &raw);

/**
 * Apply GDB run-length compression to an (already escaped) payload.
 * Runs of 4+ identical characters become `X*n`; counts that would
 * need a forbidden repeat character split into shorter runs.
 */
std::string runLengthEncode(const std::string &payload);

/** Build a complete `$payload#xx` frame (escaping applied). */
std::string frame(const std::string &raw, bool rle = false);

/**
 * Build a `%payload#xx` notification frame (escaping applied) — the
 * server-initiated, unacknowledged frames of non-stop mode (e.g.
 * `%Stop:T05...`).
 */
std::string notifyFrame(const std::string &raw);

/** What the decoder produced. */
enum class ItemKind : uint8_t {
    Packet, ///< a well-formed payload (unescaped, RLE-expanded)
    Ack,    ///< '+'
    Nak,    ///< '-'
    Break,  ///< 0x03 interrupt byte
};

/** Incremental frame decoder. */
class PacketDecoder
{
  public:
    /** Append raw transport bytes. */
    void feed(const char *data, size_t len);
    void feed(const std::string &data) { feed(data.data(), data.size()); }

    /**
     * Pop the next complete item. Returns false when more input is
     * needed. For ItemKind::Packet, @p payload holds the decoded
     * (unescaped, RLE-expanded) payload.
     */
    bool next(ItemKind &kind, std::string &payload);

    /** Frames dropped for bad checksum / malformed encoding. */
    uint64_t badFrames() const { return badFrames_; }
    /** Bytes skipped looking for a frame start. */
    uint64_t strayBytes() const { return strayBytes_; }

    /** Upper bound on an accepted frame; larger frames are dropped. */
    static constexpr size_t MaxFrame = 1 << 16;

  private:
    std::string buf_;
    uint64_t badFrames_ = 0;
    uint64_t strayBytes_ = 0;
};

/**
 * Decode one packet body: verify `$...#xx`, unescape, expand RLE.
 * Returns false on any malformation. (The incremental decoder uses
 * this; it is exposed for the codec tests.)
 */
bool decodeFrame(const std::string &wire, std::string &payload);

/** @name Hex helpers (RSP is hex-heavy; byte-level primitives live
 *  in common/hex.hh) */
///@{
/** Little-endian hex of @p bytes bytes of @p v (register encoding). */
std::string hexLe(uint64_t v, unsigned bytes = 8);
/** Parse little-endian hex back into a value. */
bool parseHexLe(const std::string &hex, uint64_t &v);
/** Big-endian (natural) hex number parse, e.g. addresses/lengths. */
bool parseHexNum(const std::string &hex, uint64_t &v);
std::string toHex(const std::vector<uint8_t> &bytes);
bool fromHex(const std::string &hex, std::vector<uint8_t> &bytes);
///@}

} // namespace dise::rsp

#endif // DISE_RSP_PACKET_HH
