#include "rsp/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dise::rsp {

RspClient::~RspClient()
{
    close();
}

bool
RspClient::connectTo(uint16_t port, unsigned timeoutSeconds)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    timeval tv{static_cast<time_t>(timeoutSeconds), 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close();
        return false;
    }
    return true;
}

std::string
RspClient::exchange(const std::string &payload)
{
    std::string wire = frame(payload);
    if (::write(fd_, wire.data(), wire.size()) !=
        static_cast<ssize_t>(wire.size()))
        return "<write-error>";
    ItemKind kind;
    std::string reply;
    char buf[4096];
    for (;;) {
        while (dec_.next(kind, reply)) {
            if (kind == ItemKind::Packet) {
                // Ack receipt, as a well-behaved RSP peer must.
                (void)!::write(fd_, "+", 1);
                return reply;
            }
        }
        ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n <= 0)
            return "<timeout-or-eof>";
        dec_.feed(buf, static_cast<size_t>(n));
    }
}

void
RspClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
stopReplyPc(const std::string &reply, uint64_t &pc)
{
    size_t pos = reply.find("20:");
    if (pos == std::string::npos || pos + 3 + 16 > reply.size())
        return false;
    return parseHexLe(reply.substr(pos + 3, 16), pc);
}

} // namespace dise::rsp
