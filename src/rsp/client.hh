/**
 * @file
 * A minimal blocking GDB-RSP client over one loopback TCP socket —
 * the counterpart of RspServer used by the scripted smoke job, the
 * protocol tests, and any in-tree tooling that needs to drive a
 * session the way a remote debugger would. One shared implementation
 * keeps the framing/ack/stop-reply conventions from drifting between
 * the test suite and the CI client.
 */

#ifndef DISE_RSP_CLIENT_HH
#define DISE_RSP_CLIENT_HH

#include <cstdint>
#include <string>

#include "rsp/packet.hh"

namespace dise::rsp {

class RspClient
{
  public:
    RspClient() = default;
    ~RspClient();

    RspClient(const RspClient &) = delete;
    RspClient &operator=(const RspClient &) = delete;

    /** Connect to 127.0.0.1:@p port. Every read carries
     *  @p timeoutSeconds so a hung server fails instead of wedging. */
    bool connectTo(uint16_t port, unsigned timeoutSeconds = 10);

    /**
     * Send one packet and block for the reply payload. Returns
     * "<write-error>" / "<timeout-or-eof>" sentinels on transport
     * failure (never valid payloads, which are '$'-framed on the
     * wire).
     */
    std::string exchange(const std::string &payload);

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    PacketDecoder dec_;
};

/** Parse the PC (reported as register 0x20) out of a T-stop reply. */
bool stopReplyPc(const std::string &reply, uint64_t &pc);

} // namespace dise::rsp

#endif // DISE_RSP_CLIENT_HH
