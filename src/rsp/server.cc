#include "rsp/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace dise::rsp {

namespace {

/** Largest m/M transfer accepted; qSupported's PacketSize=4000 (hex,
 *  16384 bytes) promises at least this much. */
constexpr uint64_t MaxTransfer = 16384;

/** Natural (big-endian) hex rendering of an address, no leading
 *  zeros — the form gdb uses inside stop replies. */
std::string
hexAddr(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
splitOnce(const std::string &s, char sep, std::string &a, std::string &b)
{
    size_t pos = s.find(sep);
    if (pos == std::string::npos)
        return false;
    a = s.substr(0, pos);
    b = s.substr(pos + 1);
    return true;
}

} // namespace

RspConnection::RspConnection(DebugSession &session, ExecFn exec,
                             bool verbose)
    : session_(session), execFn_(std::move(exec)), verbose_(verbose),
      async_(std::make_shared<AsyncState>())
{
}

bool
RspConnection::AsyncState::notify(const std::string &payload)
{
    // Caller holds mu.
    if (!open)
        return false;
    std::string wire = notifyFrame(payload);
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n =
            ::write(fd, wire.data() + off, wire.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

// ------------------------------------------------------------ protocol

bool
RspConnection::exec(RequestKind kind, uint64_t count, StopInfo &out,
                    std::string *err)
{
    if (execFn_)
        return execFn_(kind, count, out, err);
    switch (kind) {
      case RequestKind::Cont:
        out = session_.cont();
        return true;
      case RequestKind::Stepi:
        out = session_.stepi(count);
        return true;
      case RequestKind::ReverseContinue:
        out = session_.reverseContinue();
        return true;
      case RequestKind::ReverseStep:
        out = session_.reverseStep(count);
        return true;
      default:
        if (err)
            *err = "not an execution verb";
        return false;
    }
}

std::string
RspConnection::buildStopReply(DebugSession &session,
                              const StopInfo &stop, bool interrupted)
{
    std::string pcInfo =
        "20:" + hexLe(stop.pc, 8) + ";"; // register 0x20 is the PC
    if (interrupted)
        return "T02" + pcInfo; // SIGINT: the job was cancelled

    switch (stop.reason) {
      case StopReason::Event:
        switch (stop.mark.kind) {
          case EventKind::Watch: {
            // Report the trapped data address, as gdb expects.
            Addr dataAddr = stop.mark.pc;
            const auto &ws = session.debugger().backend().watchEvents();
            if (stop.mark.index >= 0 &&
                static_cast<size_t>(stop.mark.index) < ws.size())
                dataAddr = ws[stop.mark.index].addr;
            return "T05" + pcInfo + "watch:" + hexAddr(dataAddr) + ";";
          }
          case EventKind::Break:
            return "T05" + pcInfo + "hwbreak:;";
          case EventKind::Protection:
            return "T0b" + pcInfo;
        }
        return "T05" + pcInfo;
      case StopReason::Start:
        return "T05" + pcInfo + "replaylog:begin;";
      case StopReason::Step:
      case StopReason::InstLimit:
        return "T05" + pcInfo;
      case StopReason::Halted:
        return "W00";
      case StopReason::Fault:
        return "X0b";
    }
    return "S05";
}

std::string
RspConnection::stopReply(const StopInfo &stop)
{
    haveStop_ = true;
    lastStop_ = stop;
    return buildStopReply(session_, stop, false);
}

const std::string &
RspConnection::targetXml()
{
    // A self-consistent description of the session register file: 32
    // 64-bit integer registers plus the PC at regnum 32 — exactly the
    // layout `g`/`G`/`p`/`P` serve — so gdb stops falling back to
    // guessed register layouts.
    static const std::string xml = [] {
        std::string s = "<?xml version=\"1.0\"?>\n"
                        "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n"
                        "<target version=\"1.0\">\n"
                        "  <feature name=\"org.dise.sim.core\">\n";
        for (unsigned i = 0; i < NumIntRegs; ++i) {
            s += "    <reg name=\"r" + std::to_string(i) +
                 "\" bitsize=\"64\" type=\"int64\" regnum=\"" +
                 std::to_string(i) + "\"/>\n";
        }
        s += "    <reg name=\"pc\" bitsize=\"64\" type=\"code_ptr\" "
             "regnum=\"" +
             std::to_string(DebugSession::PcRegIndex) + "\"/>\n";
        s += "  </feature>\n</target>\n";
        return s;
    }();
    return xml;
}

std::string
RspConnection::handleQuery(const std::string &p)
{
    if (p.rfind("qSupported", 0) == 0)
        return std::string("PacketSize=4000;ReverseContinue+;"
                           "ReverseStep+;hwbreak+;swbreak+;"
                           "qXfer:features:read+;vContSupported+;"
                           "QNonStop") +
               (asyncExecFn_ ? "+" : "-");
    if (p.rfind("qXfer:features:read:", 0) == 0) {
        // qXfer:features:read:<annex>:<offset>,<length>
        std::string rest = p.substr(std::string("qXfer:features:read:")
                                        .size());
        std::string annex, range, offStr, lenStr;
        if (!splitOnce(rest, ':', annex, range) ||
            !splitOnce(range, ',', offStr, lenStr))
            return "E01";
        uint64_t off = 0, len = 0;
        if (annex != "target.xml" || !parseHexNum(offStr, off) ||
            !parseHexNum(lenStr, len) || len == 0 ||
            len > MaxTransfer)
            return "E01";
        const std::string &doc = targetXml();
        if (off >= doc.size())
            return "l";
        std::string chunk = doc.substr(off, len);
        bool last = off + chunk.size() >= doc.size();
        return (last ? "l" : "m") + chunk;
    }
    if (p == "qC")
        return "QC0";
    if (p == "qAttached")
        return "1";
    if (p == "qfThreadInfo")
        return "m0";
    if (p == "qsThreadInfo")
        return "l";
    if (p.rfind("qSymbol", 0) == 0)
        return "OK";
    if (p == "qTStatus")
        return "";
    if (p.rfind("qRcmd,", 0) == 0) {
        // `monitor <cmd>` passthrough, the on-ramp to the debug tools
        // from a stock gdb: the hex payload is a typed-wire command
        // line, the hex reply its encoded response. Only the tool
        // verbs pass — execution stays under gdb's own packets.
        std::vector<uint8_t> bytes;
        if (!fromHex(p.substr(6), bytes))
            return "E01";
        std::string cmd(bytes.begin(), bytes.end());
        std::string out;
        if (cmd.rfind("tool-", 0) == 0)
            out = session_.handleEncoded(cmd) + "\n";
        else
            out = "unsupported monitor command (try tool-list, "
                  "tool-enable name=<t>, tool-report name=<t>)\n";
        return toHex(std::vector<uint8_t>(out.begin(), out.end()));
    }
    return ""; // unsupported query
}

/**
 * Start a non-stop execution verb: the packet gets its "OK"
 * immediately, the work runs as a preemptible scheduler job, and the
 * final stop arrives as a `%Stop` notification built and sent by the
 * completion callback — which deliberately captures only the shared
 * AsyncState (and the session, whose lifetime the server guarantees
 * across the callback), never the connection object.
 */
std::string
RspConnection::execAsync(RequestKind kind, uint64_t count)
{
    std::shared_ptr<AsyncState> st = async_;
    DebugSession &session = session_;
    std::unique_lock<std::mutex> lk(st->mu);
    if (st->running)
        return "E05"; // one in-flight verb per connection
    st->running = true;
    st->havePending = false;
    // The hook is called with the mutex dropped: a stopping scheduler
    // may run the completion callback synchronously on this very
    // thread, and the callback takes st->mu.
    lk.unlock();
    std::function<void()> cancel = asyncExecFn_(
        kind, count,
        [st, &session](bool ok, bool interrupted, const StopInfo &stop,
                       const std::string &err) {
            // Even a failed job must produce a notification — gdb is
            // waiting for one. X0b (terminated) is the honest story
            // for a wedged/destroyed target; if the connection is
            // already gone, notify() is a no-op anyway.
            std::string payload =
                ok ? buildStopReply(session, stop, interrupted)
                   : std::string("X0b");
            std::lock_guard<std::mutex> cb(st->mu);
            st->running = false;
            st->cancel = nullptr;
            st->pendingReply = payload;
            st->havePending = true;
            st->notify("Stop:" + payload);
        });
    lk.lock();
    if (!cancel) {
        st->running = false;
        return "E04";
    }
    // A fast job may have completed (and cleared running) already; a
    // canceller stored then would target a finished ticket, where
    // cancel() is a harmless no-op — but don't resurrect the slot.
    if (st->running)
        st->cancel = std::move(cancel);
    return "OK";
}

std::string
RspConnection::handleVPacket(const std::string &p)
{
    if (p.rfind("vMustReplyEmpty", 0) == 0)
        return "";
    if (p == "vCont?")
        return "vCont;c;C;s;S";
    if (p == "vStopped") {
        std::lock_guard<std::mutex> lk(async_->mu);
        // Single-target stub: one stop per notification sequence.
        async_->havePending = false;
        return "OK";
    }
    if (p.rfind("vCont", 0) == 0) {
        // vCont;action[:thread][;...] — single-threaded target: the
        // first (leftmost) action wins.
        if (p.size() < 7 || p[5] != ';')
            return "E01";
        char action = p[6];
        RequestKind kind;
        uint64_t count = 0;
        if (action == 'c' || action == 'C') {
            kind = RequestKind::Cont;
        } else if (action == 's' || action == 'S') {
            kind = RequestKind::Stepi;
            count = 1;
        } else {
            return "E01"; // t/r: not supported by this stub
        }
        if (nonStop_ && asyncExecFn_)
            return execAsync(kind, count);
        StopInfo stop;
        std::string err;
        if (!exec(kind, count, stop, &err)) {
            wantClose_ = true;
            return "E04";
        }
        return stopReply(stop);
    }
    return ""; // unknown v-packets get the empty reply
}

std::string
RspConnection::handleInsert(const std::string &p, bool insert)
{
    // Ztype,addr,kind — type 0/1: breakpoints, 2/4: write/access
    // watchpoints, 3: read watchpoints (not implementable here).
    std::string head, rest, addrStr, kindStr;
    if (!splitOnce(p.substr(1), ',', head, rest))
        return "E01";
    if (!splitOnce(rest, ',', addrStr, kindStr)) {
        addrStr = rest; // kind omitted: default to a quadword
        kindStr = "8";
    }
    // Strip a conditional suffix (";...") some clients append.
    size_t semi = kindStr.find(';');
    if (semi != std::string::npos)
        kindStr = kindStr.substr(0, semi);

    uint64_t type = 0, addr = 0, kind = 0;
    if (!parseHexNum(head, type) || !parseHexNum(addrStr, addr) ||
        !parseHexNum(kindStr, kind))
        return "E01";
    if (type == 3)
        return ""; // read watchpoints unsupported: gdb falls back

    std::string key = std::to_string(type > 1) + ":" + addrStr + ":" +
                      kindStr;
    if (type == 2 || type == 4) {
        if (insert) {
            WatchSpec w = WatchSpec::scalar(
                "rsp@" + addrStr, addr,
                static_cast<unsigned>(kind ? kind : 8));
            int idx = session_.setWatch(w);
            if (idx < 0)
                return "E02";
            zWatches_[key] = idx;
            return "OK";
        }
        auto it = zWatches_.find(key);
        if (it == zWatches_.end())
            return "E03";
        return session_.removeWatch(it->second) ? "OK" : "E03";
    }
    if (type == 0 || type == 1) {
        if (insert) {
            BreakSpec b;
            b.pc = addr;
            b.name = "rsp@" + addrStr;
            int idx = session_.setBreak(b);
            if (idx < 0)
                return "E02";
            zBreaks_[key] = idx;
            return "OK";
        }
        auto it = zBreaks_.find(key);
        if (it == zBreaks_.end())
            return "E03";
        return session_.removeBreak(it->second) ? "OK" : "E03";
    }
    return "";
}

std::string
RspConnection::handleReadMem(const std::string &p)
{
    std::string addrStr, lenStr;
    if (!splitOnce(p.substr(1), ',', addrStr, lenStr))
        return "E01";
    uint64_t addr = 0, len = 0;
    if (!parseHexNum(addrStr, addr) || !parseHexNum(lenStr, len) ||
        len > MaxTransfer)
        return "E01";
    return toHex(session_.readMemory(addr, len));
}

std::string
RspConnection::handleWriteMem(const std::string &p)
{
    std::string head, hex, addrStr, lenStr;
    if (!splitOnce(p.substr(1), ':', head, hex) ||
        !splitOnce(head, ',', addrStr, lenStr))
        return "E01";
    uint64_t addr = 0, len = 0;
    std::vector<uint8_t> bytes;
    if (!parseHexNum(addrStr, addr) || !parseHexNum(lenStr, len) ||
        !fromHex(hex, bytes) || bytes.size() != len || len > MaxTransfer)
        return "E01";
    // The session pokes in ≤8-byte units (each a loggable intervention).
    size_t off = 0;
    while (off < bytes.size()) {
        unsigned n = static_cast<unsigned>(
            std::min<size_t>(8, bytes.size() - off));
        uint64_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
        if (!session_.writeMemory(addr + off, n, v))
            return "E02";
        off += n;
    }
    return "OK";
}

std::string
RspConnection::handleReadRegs()
{
    std::string out;
    for (uint64_t v : session_.readRegisters())
        out += hexLe(v, 8);
    return out;
}

std::string
RspConnection::handleWriteRegs(const std::string &p)
{
    std::string hex = p.substr(1);
    if (hex.size() != DebugSession::NumSessionRegs * 16)
        return "E01";
    // gdb writes back the whole file it just read, so only changed
    // values become pokes — the common unmodified writeback neither
    // floods the intervention log nor trips the unpokable cases (the
    // zero register, the PC mid-travel). A changed value the session
    // rejects is a real failure and must not be reported as OK.
    std::vector<uint64_t> current = session_.readRegisters();
    for (unsigned i = 0; i < DebugSession::NumSessionRegs; ++i) {
        uint64_t v = 0;
        if (!parseHexLe(hex.substr(i * 16, 16), v))
            return "E01";
        if (v == current[i])
            continue;
        if (!session_.writeRegister(i, v))
            return "E02";
    }
    return "OK";
}

std::string
RspConnection::handlePacket(const std::string &p)
{
    ++packetsHandled_;
    if (p.empty())
        return "";

    auto execReply = [&](RequestKind kind, uint64_t count) {
        if (nonStop_ && asyncExecFn_)
            return execAsync(kind, count);
        StopInfo stop;
        std::string err;
        if (!exec(kind, count, stop, &err)) {
            if (verbose_)
                std::fprintf(stderr, "rsp: exec failed: %s\n",
                             err.c_str());
            wantClose_ = true;
            return std::string("E04"); // session gone: hang up
        }
        return stopReply(stop);
    };

    // While a non-stop job is in flight the session belongs to the
    // scheduler worker driving it: resume packets are refused until
    // the %Stop lands (queries, stop polls, and detach stay available
    // — that is what keeps the connection responsive). Slice-atomic
    // packets DO pass: read peeks (`g`/`p`/`m`), monitor tool verbs,
    // and write-class packets (`G`/`M`/`P` pokes, `Z`/`z` break- and
    // watchpoint edits) all take the peek lock, which parks them at
    // the job's next slice boundary — so gdb can watch registers live
    // AND plant a breakpoint or patch memory while the target runs,
    // exactly like stock gdbserver's non-stop mode.
    std::unique_lock<std::mutex> peek; // held across the dispatch below
    if (nonStop_) {
        bool busy = false;
        {
            std::lock_guard<std::mutex> lk(async_->mu);
            busy = async_->running;
        }
        if (busy) {
            bool needsPeekLock = false;
            switch (p[0]) {
              case 'g':
              case 'p':
              case 'm':
              case 'G':
              case 'M':
              case 'P':
              case 'X':
              case 'Z':
              case 'z':
                needsPeekLock = true;
                break;
              case 'q':
                needsPeekLock = p.rfind("qRcmd,", 0) == 0;
                break;
              case 'Q':
              case 'v':
              case '?':
              case 'H':
              case 'D':
              case 'k':
                break;
              default:
                return "E05";
            }
            if (needsPeekLock && peekLockFn_)
                peek = peekLockFn_();
        }
    }

    try {
        switch (p[0]) {
          case 'q':
            return handleQuery(p);
          case 'Q':
            if (p == "QNonStop:1") {
                if (!asyncExecFn_)
                    return "E01";
                nonStop_ = true;
                return "OK";
            }
            if (p == "QNonStop:0") {
                nonStop_ = false;
                return "OK";
            }
            return "";
          case 'v':
            return handleVPacket(p);
          case 'H':
            return "OK";
          case '?':
            if (nonStop_) {
                std::lock_guard<std::mutex> lk(async_->mu);
                if (async_->havePending)
                    return async_->pendingReply;
                return "OK"; // nothing stopped (or still running)
            }
            return haveStop_ ? stopReply(lastStop_) : "S05";
          case 'g':
            return handleReadRegs();
          case 'G':
            return handleWriteRegs(p);
          case 'p': {
            uint64_t reg = 0;
            if (!parseHexNum(p.substr(1), reg) ||
                reg >= DebugSession::NumSessionRegs)
                return "E01";
            return hexLe(
                session_.readRegister(static_cast<unsigned>(reg)), 8);
          }
          case 'P': {
            std::string regStr, valStr;
            if (!splitOnce(p.substr(1), '=', regStr, valStr))
                return "E01";
            uint64_t reg = 0, val = 0;
            if (!parseHexNum(regStr, reg) || !parseHexLe(valStr, val))
                return "E01";
            return session_.writeRegister(static_cast<unsigned>(reg),
                                          val)
                       ? "OK"
                       : "E02";
          }
          case 'm':
            return handleReadMem(p);
          case 'M':
            return handleWriteMem(p);
          case 'Z':
            return handleInsert(p, true);
          case 'z':
            return handleInsert(p, false);
          case 'c':
            return execReply(RequestKind::Cont, 0);
          case 's':
            return execReply(RequestKind::Stepi, 1);
          case 'b':
            if (p == "bc")
                return execReply(RequestKind::ReverseContinue, 0);
            if (p == "bs")
                return execReply(RequestKind::ReverseStep, 1);
            return "";
          case 'D':
            wantClose_ = true;
            return "OK";
          case 'k':
            wantClose_ = true;
            return "";
          default:
            return ""; // unknown packets get the empty reply
        }
    } catch (const std::exception &e) {
        // Wire input must never take the server down.
        if (verbose_)
            std::fprintf(stderr, "rsp: '%s' failed: %s\n", p.c_str(),
                         e.what());
        return "E00";
    }
}

// ----------------------------------------------------------- transport

void
RspConnection::serve(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto sendAll = [&](const std::string &data) {
        size_t off = 0;
        while (off < data.size()) {
            ssize_t n = ::write(fd, data.data() + off,
                                data.size() - off);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    };

    {
        std::lock_guard<std::mutex> lk(async_->mu);
        async_->fd = fd;
        async_->open = true;
    }

    PacketDecoder dec;
    std::string lastFrame;
    wantClose_ = false;
    char buf[4096];
    while (!wantClose_) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n <= 0)
            break;
        dec.feed(buf, static_cast<size_t>(n));

        ItemKind kind;
        std::string payload;
        while (dec.next(kind, payload)) {
            if (kind == ItemKind::Ack)
                continue;
            if (kind == ItemKind::Nak) {
                // Same mutex as replies/notifications: a retransmit
                // must not interleave mid-frame with a %Stop.
                std::lock_guard<std::mutex> lk(async_->mu);
                if (!lastFrame.empty())
                    sendAll(lastFrame);
                continue;
            }
            if (kind == ItemKind::Break) {
                // All-stop execution is synchronous (nothing to
                // stop); a non-stop job is interrupted at its next
                // slice boundary and lands as %Stop:T02.
                std::function<void()> cancel;
                {
                    std::lock_guard<std::mutex> lk(async_->mu);
                    cancel = async_->cancel;
                }
                if (cancel)
                    cancel();
                continue;
            }
            if (verbose_)
                std::fprintf(stderr, "rsp <- %s\n", payload.c_str());
            std::string reply = handlePacket(payload);
            if (verbose_)
                std::fprintf(stderr, "rsp -> %s\n", reply.c_str());
            bool wasKill = !payload.empty() && payload[0] == 'k';
            lastFrame = frame(reply);
            bool sent;
            {
                // Replies and %Stop notifications must not interleave
                // mid-frame: both go out under the async-state mutex.
                std::lock_guard<std::mutex> lk(async_->mu);
                sent = sendAll("+") && (wasKill || sendAll(lastFrame));
            }
            if (!sent)
                wantClose_ = true;
            if (wantClose_)
                break;
        }
    }

    // Close the notification channel before the fd dies; a completion
    // callback landing later finds open == false and drops its send.
    // Taking the mutex also drains any notify() already in flight.
    {
        std::lock_guard<std::mutex> lk(async_->mu);
        async_->open = false;
        async_->fd = -1;
    }
}

RspServer::RspServer(DebugSession &session, RspServerOptions opts)
    : conn_(session, {}, opts.verbose), opts_(opts)
{
}

RspServer::~RspServer()
{
    stop();
}

bool
RspServer::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 1) < 0) {
        stop();
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    return true;
}

void
RspServer::stop()
{
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
RspServer::serveOne()
{
    DISE_ASSERT(listenFd_ >= 0, "start() the server before serving");
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return; // stop() closed the listener
    conn_.serve(fd);
    ::close(fd);
}

} // namespace dise::rsp
